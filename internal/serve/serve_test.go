package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mxq"
	"mxq/internal/testutil"
	"mxq/internal/xmark"
)

// newTestServer builds a server over a small generated XMark document
// plus its in-process DB (the byte-comparison oracle).
func newTestServer(t *testing.T, cfg Config, opts ...mxq.Option) (*httptest.Server, *mxq.DB) {
	t.Helper()
	db := mxq.Open(opts...)
	db.LoadXMark("auction.xml", 0.002, 11)
	ts := httptest.NewServer(New(db, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, db
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServerDifferentialXMark is the wire-level differential test: for
// every XMark query the bytes served over HTTP must equal the
// in-process serialization exactly.
func TestServerDifferentialXMark(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	for i := 0; i < 20; i++ {
		q := xmark.Query(i + 1)
		want, err := db.QueryString(q)
		if err != nil {
			t.Fatalf("in-process Q%d: %v", i+1, err)
		}
		resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": q})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("Q%d: status %d: %s", i+1, resp.StatusCode, body)
			continue
		}
		if string(body) != want {
			t.Errorf("Q%d: wire bytes differ from in-process result", i+1)
		}
	}
}

// TestServerPreparedRoundTrip drives the prepared-statement endpoints:
// prepare once, introspect vars, exec with typed JSON binds, close.
func TestServerPreparedRoundTrip(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	const q = `declare variable $min external;
		for $a in /site/open_auctions/open_auction
		where number($a/initial) >= $min
		return $a/initial/text()`
	resp, body := postJSON(t, ts.URL+"/prepare", map[string]any{"query": q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: status %d: %s", resp.StatusCode, body)
	}
	var pr struct {
		ID   string `json:"id"`
		Vars []struct {
			Name     string `json:"name"`
			Required bool   `json:"required"`
		} `json:"vars"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("prepare response: %v", err)
	}
	if len(pr.Vars) != 1 || pr.Vars[0].Name != "min" || !pr.Vars[0].Required {
		t.Fatalf("vars = %+v, want one required $min", pr.Vars)
	}

	stmt, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, min := range []int64{1, 5} {
		want, err := stmt.Bind("min", mxq.Int(min)).ExecString()
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, ts.URL+"/stmt/"+pr.ID+"/exec",
			map[string]any{"binds": map[string]any{"min": min}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exec min=%d: status %d: %s", min, resp.StatusCode, body)
		}
		if string(body) != want {
			t.Errorf("exec min=%d: wire bytes differ from in-process result", min)
		}
	}

	// binding an undeclared variable is a client error with its W3C code
	resp, body = postJSON(t, ts.URL+"/stmt/"+pr.ID+"/exec",
		map[string]any{"binds": map[string]any{"nope": 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("undeclared bind: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "XPST0008") {
		t.Errorf("undeclared bind response %s lacks XPST0008", body)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/stmt/"+pr.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("close: status %d", dresp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/stmt/"+pr.ID+"/exec", map[string]any{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("exec after close: status %d, want 404", resp.StatusCode)
	}
}

// TestServerBindTypes checks the JSON-to-XQuery value mapping: integer
// vs float vs string vs bool vs sequence.
func TestServerBindTypes(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	cases := []struct {
		q    string
		bind any
		want string
	}{
		{`declare variable $v external; $v + 1`, 41, "42"},
		{`declare variable $v external; $v * 2`, 1.5, "3"},
		{`declare variable $v external; concat($v, "!")`, "hi", "hi!"},
		{`declare variable $v external; not($v)`, true, "false"},
		{`declare variable $v external; sum($v)`, []any{1, 2, 3}, "6"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/query",
			map[string]any{"query": c.q, "binds": map[string]any{"v": c.bind}})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("bind %v: status %d: %s", c.bind, resp.StatusCode, body)
			continue
		}
		if string(body) != c.want {
			t.Errorf("bind %v: got %q, want %q", c.bind, body, c.want)
		}
	}
}

// TestServerErrorMapping: static errors are the client's fault (400),
// dynamic errors are execution failures (500), and both carry their
// W3C code in the JSON body.
func TestServerErrorMapping(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name   string
		query  string
		status int
		code   string
	}{
		{"parse error", `for $x in`, http.StatusBadRequest, ""},
		{"static error", `$undeclared`, http.StatusBadRequest, "XPST0008"},
		{"dynamic error", `doc("missing.xml")//x`, http.StatusInternalServerError, "FODC0002"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": c.query})
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
			continue
		}
		if c.code != "" && !strings.Contains(string(body), c.code) {
			t.Errorf("%s: body %s lacks code %s", c.name, body, c.code)
		}
	}
}

// slowQuery runs for seconds uncancelled; with a 50ms wire timeout the
// server must answer 504 promptly, keep serving, and leak nothing.
const slowQuery = `sum(for $i in 1 to 2000 return sum(for $j in 1 to 2000 return $i * $j))`

func TestServerQueryTimeout(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts, _ := newTestServer(t, Config{}, mxq.WithWorkers(4), mxq.WithParallelThreshold(1))
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/query",
		map[string]any{"query": slowQuery, "timeout_ms": 50})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout response took %v", elapsed)
	}
	// the server must still be healthy afterwards
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after timeout: %d", hresp.StatusCode)
	}
	// the cancelled execution's workers drain; testutil.CheckGoroutines
	// asserts it at cleanup, after the test server closes its conns
}

// TestServerConcurrentSessions hammers one server with N clients × M
// prepared statements; every response must be byte-identical to the
// in-process result. Run under -race this doubles as the data-race
// check on the session registry and the shared engine.
func TestServerConcurrentSessions(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	queries := []string{
		xmark.Query(1),
		xmark.Query(5),
		xmark.Query(20),
		`count(//item)`,
	}
	type session struct {
		id   string
		want string
	}
	sessions := make([]session, len(queries))
	for i, q := range queries {
		resp, body := postJSON(t, ts.URL+"/prepare", map[string]any{"query": q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("prepare %d: %s", i, body)
		}
		var pr struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		want, err := db.QueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = session{id: pr.ID, want: want}
	}
	const clients = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s := sessions[(c+r)%len(sessions)]
				resp, err := http.Post(ts.URL+"/stmt/"+s.id+"/exec", "application/json",
					strings.NewReader(`{}`))
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d round %d: status %d: %s", c, r, resp.StatusCode, body)
					return
				}
				if string(body) != s.want {
					errs <- fmt.Errorf("client %d round %d: bytes differ from in-process result", c, r)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// saturate occupies every execution slot of ts with a slow query and
// waits (via /metrics) until it is actually running. The returned
// function waits for the slow query to finish.
func saturate(t *testing.T, ts *httptest.Server) (wait func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		postSlow, _ := json.Marshal(map[string]any{"query": slowQuery, "timeout_ms": 3000})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(postSlow))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "mxqd_inflight_queries 1") {
			return func() { <-done }
		}
		if time.Now().After(deadline) {
			<-done
			t.Skip("slow query finished before the probe; cannot exercise the limit")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerInflightLimit verifies load shedding with queueing
// disabled: with one execution slot and MaxQueue < 0, a second
// concurrent query is rejected with 503 up front. The probe query is a
// parse error — getting 503 rather than 400 proves the saturated
// server rejected it before spending any compile work on it.
func TestServerInflightLimit(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxInflight: 1, MaxQueue: -1})
	wait := saturate(t, ts)
	defer wait()
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": `for $x in`})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second query: status %d: %s", resp.StatusCode, body)
	}
	// No compile happened for the rejected request.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "mxqd_compile_errors_total 0") {
		t.Errorf("rejected parse-error request was compiled:\n%s", mbody)
	}
}

// TestServerQueuedAdmission: a saturated server no longer sheds at the
// door — a request with deadline to spare waits in the admission queue
// and succeeds once the slot frees.
func TestServerQueuedAdmission(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxInflight: 1})
	wait := saturate(t, ts)
	defer wait()
	resp, body := postJSON(t, ts.URL+"/query",
		map[string]any{"query": `1+1`, "timeout_ms": 30000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued query: status %d: %s", resp.StatusCode, body)
	}
	if string(body) != "2" {
		t.Fatalf("queued query result %q, want 2", body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "mxqd_queue_wait_seconds_count") {
		t.Errorf("metrics lack the queue wait histogram:\n%s", mbody)
	}
}

// TestServerQueueDeadline: a queued request whose deadline expires
// before a slot frees answers 503 — it did no work, so 504 (execution
// timed out) would be misleading.
func TestServerQueueDeadline(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxInflight: 1})
	wait := saturate(t, ts)
	defer wait()
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/query",
		map[string]any{"query": `1+1`, "timeout_ms": 50})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired-in-queue query: status %d: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("expired-in-queue response took %v", elapsed)
	}
}

// TestServerStmtEviction is the regression test for the
// prepared-statement session leak: idle statements expire under the
// TTL and a full registry evicts its LRU entry instead of wedging
// /prepare into 503.
func TestServerStmtEviction(t *testing.T) {
	db := mxq.Open()
	db.LoadXMark("auction.xml", 0.002, 11)
	srv := New(db, Config{MaxStmts: 2, StmtTTL: time.Minute})
	clock := time.Now()
	srv.now = func() time.Time { return clock }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	prepare := func(q string) string {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/prepare", map[string]any{"query": q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("prepare: status %d: %s", resp.StatusCode, body)
		}
		var pr struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		return pr.ID
	}
	execStatusOf := func(id string) int {
		t.Helper()
		resp, _ := postJSON(t, ts.URL+"/stmt/"+id+"/exec", map[string]any{})
		return resp.StatusCode
	}

	// LRU overflow: the registry holds 2; preparing a third evicts the
	// least recently used (id1 — id2 was touched more recently).
	id1 := prepare(`1+1`)
	id2 := prepare(`2+2`)
	if got := execStatusOf(id2); got != http.StatusOK {
		t.Fatalf("exec id2: status %d", got)
	}
	if got := execStatusOf(id1); got != http.StatusOK { // id1 now most recent
		t.Fatalf("exec id1: status %d", got)
	}
	id3 := prepare(`3+3`)
	if got := execStatusOf(id2); got != http.StatusNotFound {
		t.Errorf("LRU-evicted id2: status %d, want 404", got)
	}
	if got := execStatusOf(id1); got != http.StatusOK {
		t.Errorf("recently used id1: status %d, want 200", got)
	}

	// Idle TTL: advance past the TTL; the next prepare sweeps both.
	clock = clock.Add(2 * time.Minute)
	id4 := prepare(`4+4`)
	for _, id := range []string{id1, id3} {
		if got := execStatusOf(id); got != http.StatusNotFound {
			t.Errorf("TTL-expired %s: status %d, want 404", id, got)
		}
	}
	if got := execStatusOf(id4); got != http.StatusOK {
		t.Errorf("fresh id4: status %d, want 200", got)
	}
	if n := srv.StmtCount(); n != 1 {
		t.Errorf("StmtCount = %d, want 1", n)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "mxqd_stmts_evicted_total 3") {
		t.Errorf("metrics lack mxqd_stmts_evicted_total 3:\n%s", mbody)
	}
}

// failingWriter is a ResponseWriter whose body writes fail — a client
// that vanished mid-stream.
type failingWriter struct{ h http.Header }

func (f *failingWriter) Header() http.Header       { return f.h }
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("client gone") }

// TestServerSerializeFailure: a result stream that fails mid-write is
// counted, and the latency histogram still gets its observation (the
// clock runs to end-of-stream).
func TestServerSerializeFailure(t *testing.T) {
	db := mxq.Open()
	db.LoadXMark("auction.xml", 0.002, 11)
	srv := New(db, Config{})
	stmt, err := db.Prepare(`1 to 100`)
	if err != nil {
		t.Fatal(err)
	}
	srv.run(nil, &failingWriter{h: make(http.Header)}, stmt)
	if got := srv.metrics.serializeFailures.Load(); got != 1 {
		t.Errorf("serializeFailures = %d, want 1", got)
	}
	if got := srv.metrics.latency.count.Load(); got != 1 {
		t.Errorf("latency count = %d, want 1 (observe must run after serialization)", got)
	}
	if got := srv.metrics.queries.Load(); got != 1 {
		t.Errorf("queries = %d, want 1", got)
	}
}

// TestServerMetrics spot-checks the exposition format.
func TestServerMetrics(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	if resp, _ := postJSON(t, ts.URL+"/query", map[string]any{"query": `1+1`}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"mxqd_queries_total 1",
		"mxqd_inflight_queries 0",
		"mxqd_query_seconds_count 1",
		"mxqd_plan_cache_misses_total",
		`mxqd_query_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, text)
		}
	}
}
