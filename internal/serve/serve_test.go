package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mxq"
	"mxq/internal/xmark"
)

// newTestServer builds a server over a small generated XMark document
// plus its in-process DB (the byte-comparison oracle).
func newTestServer(t *testing.T, cfg Config, opts ...mxq.Option) (*httptest.Server, *mxq.DB) {
	t.Helper()
	db := mxq.Open(opts...)
	db.LoadXMark("auction.xml", 0.002, 11)
	ts := httptest.NewServer(New(db, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, db
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServerDifferentialXMark is the wire-level differential test: for
// every XMark query the bytes served over HTTP must equal the
// in-process serialization exactly.
func TestServerDifferentialXMark(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	for i := 0; i < 20; i++ {
		q := xmark.Query(i + 1)
		want, err := db.QueryString(q)
		if err != nil {
			t.Fatalf("in-process Q%d: %v", i+1, err)
		}
		resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": q})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("Q%d: status %d: %s", i+1, resp.StatusCode, body)
			continue
		}
		if string(body) != want {
			t.Errorf("Q%d: wire bytes differ from in-process result", i+1)
		}
	}
}

// TestServerPreparedRoundTrip drives the prepared-statement endpoints:
// prepare once, introspect vars, exec with typed JSON binds, close.
func TestServerPreparedRoundTrip(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	const q = `declare variable $min external;
		for $a in /site/open_auctions/open_auction
		where number($a/initial) >= $min
		return $a/initial/text()`
	resp, body := postJSON(t, ts.URL+"/prepare", map[string]any{"query": q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: status %d: %s", resp.StatusCode, body)
	}
	var pr struct {
		ID   string `json:"id"`
		Vars []struct {
			Name     string `json:"name"`
			Required bool   `json:"required"`
		} `json:"vars"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("prepare response: %v", err)
	}
	if len(pr.Vars) != 1 || pr.Vars[0].Name != "min" || !pr.Vars[0].Required {
		t.Fatalf("vars = %+v, want one required $min", pr.Vars)
	}

	stmt, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, min := range []int64{1, 5} {
		want, err := stmt.Bind("min", mxq.Int(min)).ExecString()
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, ts.URL+"/stmt/"+pr.ID+"/exec",
			map[string]any{"binds": map[string]any{"min": min}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exec min=%d: status %d: %s", min, resp.StatusCode, body)
		}
		if string(body) != want {
			t.Errorf("exec min=%d: wire bytes differ from in-process result", min)
		}
	}

	// binding an undeclared variable is a client error with its W3C code
	resp, body = postJSON(t, ts.URL+"/stmt/"+pr.ID+"/exec",
		map[string]any{"binds": map[string]any{"nope": 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("undeclared bind: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "XPST0008") {
		t.Errorf("undeclared bind response %s lacks XPST0008", body)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/stmt/"+pr.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("close: status %d", dresp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/stmt/"+pr.ID+"/exec", map[string]any{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("exec after close: status %d, want 404", resp.StatusCode)
	}
}

// TestServerBindTypes checks the JSON-to-XQuery value mapping: integer
// vs float vs string vs bool vs sequence.
func TestServerBindTypes(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	cases := []struct {
		q    string
		bind any
		want string
	}{
		{`declare variable $v external; $v + 1`, 41, "42"},
		{`declare variable $v external; $v * 2`, 1.5, "3"},
		{`declare variable $v external; concat($v, "!")`, "hi", "hi!"},
		{`declare variable $v external; not($v)`, true, "false"},
		{`declare variable $v external; sum($v)`, []any{1, 2, 3}, "6"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/query",
			map[string]any{"query": c.q, "binds": map[string]any{"v": c.bind}})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("bind %v: status %d: %s", c.bind, resp.StatusCode, body)
			continue
		}
		if string(body) != c.want {
			t.Errorf("bind %v: got %q, want %q", c.bind, body, c.want)
		}
	}
}

// TestServerErrorMapping: static errors are the client's fault (400),
// dynamic errors are execution failures (500), and both carry their
// W3C code in the JSON body.
func TestServerErrorMapping(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name   string
		query  string
		status int
		code   string
	}{
		{"parse error", `for $x in`, http.StatusBadRequest, ""},
		{"static error", `$undeclared`, http.StatusBadRequest, "XPST0008"},
		{"dynamic error", `doc("missing.xml")//x`, http.StatusInternalServerError, "FODC0002"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": c.query})
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
			continue
		}
		if c.code != "" && !strings.Contains(string(body), c.code) {
			t.Errorf("%s: body %s lacks code %s", c.name, body, c.code)
		}
	}
}

// slowQuery runs for seconds uncancelled; with a 50ms wire timeout the
// server must answer 504 promptly, keep serving, and leak nothing.
const slowQuery = `sum(for $i in 1 to 2000 return sum(for $j in 1 to 2000 return $i * $j))`

func TestServerQueryTimeout(t *testing.T) {
	ts, _ := newTestServer(t, Config{}, mxq.WithWorkers(4), mxq.WithParallelThreshold(1))
	before := runtime.NumGoroutine()
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/query",
		map[string]any{"query": slowQuery, "timeout_ms": 50})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout response took %v", elapsed)
	}
	// the server must still be healthy afterwards
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after timeout: %d", hresp.StatusCode)
	}
	// and the cancelled execution's workers must have drained
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 { // allow keep-alive conns
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after timeout", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerConcurrentSessions hammers one server with N clients × M
// prepared statements; every response must be byte-identical to the
// in-process result. Run under -race this doubles as the data-race
// check on the session registry and the shared engine.
func TestServerConcurrentSessions(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	queries := []string{
		xmark.Query(1),
		xmark.Query(5),
		xmark.Query(20),
		`count(//item)`,
	}
	type session struct {
		id   string
		want string
	}
	sessions := make([]session, len(queries))
	for i, q := range queries {
		resp, body := postJSON(t, ts.URL+"/prepare", map[string]any{"query": q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("prepare %d: %s", i, body)
		}
		var pr struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		want, err := db.QueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = session{id: pr.ID, want: want}
	}
	const clients = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s := sessions[(c+r)%len(sessions)]
				resp, err := http.Post(ts.URL+"/stmt/"+s.id+"/exec", "application/json",
					strings.NewReader(`{}`))
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d round %d: status %d: %s", c, r, resp.StatusCode, body)
					return
				}
				if string(body) != s.want {
					errs <- fmt.Errorf("client %d round %d: bytes differ from in-process result", c, r)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerInflightLimit verifies load shedding: with one execution
// slot, a second concurrent query is rejected with 503 up front.
func TestServerInflightLimit(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxInflight: 1})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// occupy the slot with a slow query (bounded by its own timeout)
		postSlow, _ := json.Marshal(map[string]any{"query": slowQuery, "timeout_ms": 3000})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(postSlow))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		<-release
	}()
	// wait until the slot is actually taken
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "mxqd_inflight_queries 1") {
			break
		}
		if time.Now().After(deadline) {
			close(release)
			t.Skip("slow query finished before the probe; cannot exercise the limit")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": `1+1`})
	close(release)
	<-done
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second query: status %d: %s", resp.StatusCode, body)
	}
}

// TestServerMetrics spot-checks the exposition format.
func TestServerMetrics(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	if resp, _ := postJSON(t, ts.URL+"/query", map[string]any{"query": `1+1`}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"mxqd_queries_total 1",
		"mxqd_inflight_queries 0",
		"mxqd_query_seconds_count 1",
		"mxqd_plan_cache_misses_total",
		`mxqd_query_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, text)
		}
	}
}
