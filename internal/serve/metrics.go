package serve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the duration
// histograms, decade-stepped from 1ms to 10s plus +Inf.
var latencyBuckets = [numBuckets - 1]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// numBuckets counts the histogram buckets including +Inf.
const numBuckets = 10

// histo is a lock-free duration histogram over latencyBuckets.
type histo struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Int64
}

func (h *histo) observe(d time.Duration) {
	h.count.Add(1)
	h.sum.Add(int64(d))
	sec := d.Seconds()
	k := numBuckets - 1 // +Inf
	for i, ub := range latencyBuckets {
		if sec <= ub {
			k = i
			break
		}
	}
	h.buckets[k].Add(1)
}

// write renders the histogram in the text exposition format under the
// given metric name.
func (h *histo) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", ub), cum)
	}
	cum += h.buckets[numBuckets-1].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, time.Duration(h.sum.Load()).Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// metrics holds the server's counters. Everything is atomic — the hot
// path never takes a lock.
type metrics struct {
	queries           atomic.Int64 // executions started
	errors            atomic.Int64 // executions that returned an error
	timeouts          atomic.Int64 // executions cancelled by deadline/disconnect
	compileErrors     atomic.Int64 // prepare/one-shot compile failures
	rejected          atomic.Int64 // admissions rejected (queue full or expired while queued)
	memRejected       atomic.Int64 // admissions rejected by the scheduler memory pool
	inflight          atomic.Int64 // currently admitted requests
	serializeFailures atomic.Int64 // result streams that failed mid-write
	stmtsEvicted      atomic.Int64 // prepared statements evicted (TTL or LRU overflow)

	latency   histo // execution + serialization, to end-of-stream
	queueWait histo // time spent waiting for admission
}

func (m *metrics) observe(d time.Duration, err error) {
	m.queries.Add(1)
	m.latency.observe(d)
	if err != nil {
		m.errors.Add(1)
		if execStatus(err) == http.StatusGatewayTimeout {
			m.timeouts.Add(1)
		}
	}
}

// handleMetrics renders the counters in the text exposition format
// (counter/gauge/histogram lines a Prometheus scraper accepts).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := &s.metrics
	hits, misses, cached := s.db.Engine().CacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# TYPE mxqd_queries_total counter\nmxqd_queries_total %d\n", m.queries.Load())
	fmt.Fprintf(w, "# TYPE mxqd_query_errors_total counter\nmxqd_query_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "# TYPE mxqd_query_timeouts_total counter\nmxqd_query_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(w, "# TYPE mxqd_compile_errors_total counter\nmxqd_compile_errors_total %d\n", m.compileErrors.Load())
	fmt.Fprintf(w, "# TYPE mxqd_rejected_total counter\nmxqd_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "# TYPE mxqd_inflight_queries gauge\nmxqd_inflight_queries %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# TYPE mxqd_serialize_failures_total counter\nmxqd_serialize_failures_total %d\n", m.serializeFailures.Load())
	fmt.Fprintf(w, "# TYPE mxqd_prepared_statements gauge\nmxqd_prepared_statements %d\n", s.StmtCount())
	fmt.Fprintf(w, "# TYPE mxqd_stmts_evicted_total counter\nmxqd_stmts_evicted_total %d\n", m.stmtsEvicted.Load())
	fmt.Fprintf(w, "# TYPE mxqd_plan_cache_hits_total counter\nmxqd_plan_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# TYPE mxqd_plan_cache_misses_total counter\nmxqd_plan_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# TYPE mxqd_plan_cache_size gauge\nmxqd_plan_cache_size %d\n", cached)
	st := s.sched.Stats()
	fmt.Fprintf(w, "# TYPE mxqd_queue_depth gauge\nmxqd_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(w, "# TYPE mxqd_sched_running gauge\nmxqd_sched_running %d\n", st.Running)
	fmt.Fprintf(w, "# TYPE mxqd_sched_admitted_total counter\nmxqd_sched_admitted_total %d\n", st.Admitted)
	fmt.Fprintf(w, "# TYPE mxqd_sched_queue_rejected_total counter\nmxqd_sched_queue_rejected_total %d\n", st.RejectedFull)
	fmt.Fprintf(w, "# TYPE mxqd_sched_queue_canceled_total counter\nmxqd_sched_queue_canceled_total %d\n", st.CanceledWait)
	fmt.Fprintf(w, "# TYPE mxqd_sched_pool_workers gauge\nmxqd_sched_pool_workers %d\n", st.Workers)
	fmt.Fprintf(w, "# TYPE mxqd_sched_slots_in_use gauge\nmxqd_sched_slots_in_use %d\n", st.SlotsInUse)
	fmt.Fprintf(w, "# TYPE mxqd_sched_slots_in_use_max gauge\nmxqd_sched_slots_in_use_max %d\n", st.MaxSlotsInUse)
	fmt.Fprintf(w, "# TYPE mxqd_sched_budget_granted gauge\nmxqd_sched_budget_granted %d\n", st.GrantedBudget)
	fmt.Fprintf(w, "# TYPE mxqd_mem_rejected_total counter\nmxqd_mem_rejected_total %d\n", m.memRejected.Load())
	fmt.Fprintf(w, "# TYPE mxqd_mem_per_query_bytes gauge\nmxqd_mem_per_query_bytes %d\n", st.MemPerQuery)
	fmt.Fprintf(w, "# TYPE mxqd_mem_total_bytes gauge\nmxqd_mem_total_bytes %d\n", st.MemTotal)
	fmt.Fprintf(w, "# TYPE mxqd_mem_inuse_bytes gauge\nmxqd_mem_inuse_bytes %d\n", st.MemInUse)
	fmt.Fprintf(w, "# TYPE mxqd_mem_highwater_bytes gauge\nmxqd_mem_highwater_bytes %d\n", st.MemHighWater)
	m.latency.write(w, "mxqd_query_seconds")
	m.queueWait.write(w, "mxqd_queue_wait_seconds")
}

// LimitListener caps concurrently accepted connections at n: Accept
// blocks while n connections are open, and each connection returns its
// slot on Close. This is the daemon's connection limit, sitting below
// the per-query inflight limit.
func LimitListener(l net.Listener, n int) net.Listener {
	return &limitListener{Listener: l, sem: make(chan struct{}, n)}
}

type limitListener struct {
	net.Listener
	sem chan struct{}
}

// Accept waits for a connection slot, then accepts.
//
// waitcheck:exempt the gate intentionally blocks while the daemon is
// at its connection limit — there is no request context at this layer,
// and closing the listener unblocks it; the error-path and per-conn
// releases drain a slot this call provably holds.
func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitConn{Conn: c, release: func() { <-l.sem }}, nil
}

type limitConn struct {
	net.Conn
	release  func()
	released atomic.Bool
}

func (c *limitConn) Close() error {
	if c.released.CompareAndSwap(false, true) {
		defer c.release()
	}
	return c.Conn.Close()
}
