package serve

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the query latency
// histogram, decade-stepped from 1ms to 10s plus +Inf.
var latencyBuckets = [numBuckets - 1]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// numBuckets counts the histogram buckets including +Inf.
const numBuckets = 10

// metrics holds the server's counters. Everything is atomic — the hot
// path never takes a lock.
type metrics struct {
	queries       atomic.Int64 // executions started
	errors        atomic.Int64 // executions that returned an error
	timeouts      atomic.Int64 // executions cancelled by deadline/disconnect
	compileErrors atomic.Int64 // prepare/one-shot compile failures
	rejected      atomic.Int64 // executions shed by the inflight limit
	inflight      atomic.Int64 // currently executing queries

	latencySum   atomic.Int64 // nanoseconds, all executions
	bucketCounts [numBuckets]atomic.Int64
}

func (m *metrics) observe(d time.Duration, err error) {
	m.queries.Add(1)
	m.latencySum.Add(int64(d))
	sec := d.Seconds()
	k := numBuckets - 1 // +Inf
	for i, ub := range latencyBuckets {
		if sec <= ub {
			k = i
			break
		}
	}
	m.bucketCounts[k].Add(1)
	if err != nil {
		m.errors.Add(1)
		if execStatus(err) == http.StatusGatewayTimeout {
			m.timeouts.Add(1)
		}
	}
}

// handleMetrics renders the counters in the text exposition format
// (counter/gauge/histogram lines a Prometheus scraper accepts).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := &s.metrics
	hits, misses, cached := s.db.Engine().CacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# TYPE mxqd_queries_total counter\nmxqd_queries_total %d\n", m.queries.Load())
	fmt.Fprintf(w, "# TYPE mxqd_query_errors_total counter\nmxqd_query_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "# TYPE mxqd_query_timeouts_total counter\nmxqd_query_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(w, "# TYPE mxqd_compile_errors_total counter\nmxqd_compile_errors_total %d\n", m.compileErrors.Load())
	fmt.Fprintf(w, "# TYPE mxqd_rejected_total counter\nmxqd_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "# TYPE mxqd_inflight_queries gauge\nmxqd_inflight_queries %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# TYPE mxqd_prepared_statements gauge\nmxqd_prepared_statements %d\n", s.StmtCount())
	fmt.Fprintf(w, "# TYPE mxqd_plan_cache_hits_total counter\nmxqd_plan_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# TYPE mxqd_plan_cache_misses_total counter\nmxqd_plan_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# TYPE mxqd_plan_cache_size gauge\nmxqd_plan_cache_size %d\n", cached)
	fmt.Fprintf(w, "# TYPE mxqd_query_seconds histogram\n")
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += m.bucketCounts[i].Load()
		fmt.Fprintf(w, "mxqd_query_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", ub), cum)
	}
	cum += m.bucketCounts[numBuckets-1].Load()
	fmt.Fprintf(w, "mxqd_query_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "mxqd_query_seconds_sum %g\n", time.Duration(m.latencySum.Load()).Seconds())
	fmt.Fprintf(w, "mxqd_query_seconds_count %d\n", m.queries.Load())
}

// LimitListener caps concurrently accepted connections at n: Accept
// blocks while n connections are open, and each connection returns its
// slot on Close. This is the daemon's connection limit, sitting below
// the per-query inflight limit.
func LimitListener(l net.Listener, n int) net.Listener {
	return &limitListener{Listener: l, sem: make(chan struct{}, n)}
}

type limitListener struct {
	net.Listener
	sem chan struct{}
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitConn{Conn: c, release: func() { <-l.sem }}, nil
}

type limitConn struct {
	net.Conn
	release  func()
	released atomic.Bool
}

func (c *limitConn) Close() error {
	if c.released.CompareAndSwap(false, true) {
		defer c.release()
	}
	return c.Conn.Close()
}
