package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mxq"
	"mxq/internal/faults"
	"mxq/internal/testutil"
	"mxq/internal/xmark"
)

// TestServeStreamChaos is the serving-layer leg of the chaos suite: the
// serve.stream fault point fails response-body writes mid-stream. The
// server must count each failure, stay healthy, and — once the fault is
// disarmed — serve every query of the mix byte-identical to the
// in-process oracle.
func TestServeStreamChaos(t *testing.T) {
	testutil.CheckGoroutines(t)
	t.Cleanup(faults.Reset)
	ts, db := newTestServer(t, Config{})

	want := make([]string, 20)
	for i := range want {
		w, err := db.QueryString(xmark.Query(i + 1))
		if err != nil {
			t.Fatalf("oracle Q%d: %v", i+1, err)
		}
		want[i] = w
	}

	seed := uint64(424242)
	if v := os.Getenv("MXQ_FAULTS_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("MXQ_FAULTS_SEED=%q: %v", v, err)
		}
		seed = n
	}
	faults.Reset()
	if err := faults.Enable("serve.stream", 0.5, seed, faults.ModeError); err != nil {
		t.Fatal(err)
	}
	// Under the fault, a response either arrives intact (every write
	// survived — it must equal the oracle) or is cut short. A wrong but
	// complete body would mean the fault corrupted data instead of
	// failing the write.
	failed := 0
	for i := range want {
		body, complete := postTolerant(t, ts.URL+"/query", xmark.Query(i+1))
		if complete && body == want[i] {
			continue
		}
		if complete && body != want[i] && !strings.HasPrefix(want[i], body) {
			t.Errorf("faulted Q%d: corrupted (non-prefix) body", i+1)
		}
		failed++
	}
	faults.Reset()
	if failed == 0 {
		t.Error("no stream failed with serve.stream armed at p=0.5 — site is likely not wired")
	}

	// every failed stream was counted
	if n := metricValue(t, ts.URL, "mxqd_serialize_failures_total"); n < int64(failed) {
		t.Errorf("mxqd_serialize_failures_total = %d, want >= %d", n, failed)
	}
	// the server survived: healthz is green and the full mix round-trips
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v, %v", resp, err)
	}
	resp.Body.Close()
	for i := range want {
		resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": xmark.Query(i + 1)})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("post-chaos Q%d: status %d: %s", i+1, resp.StatusCode, body)
			continue
		}
		if string(body) != want[i] {
			t.Errorf("post-chaos Q%d differs from the in-process oracle", i+1)
		}
	}
}

// postTolerant posts a query and reads as much of the body as the
// server managed to stream; complete reports whether the response
// terminated cleanly (no mid-stream cut).
func postTolerant(t *testing.T, url, query string) (body string, complete bool) {
	t.Helper()
	b, err := json.Marshal(map[string]any{"query": query})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return string(data), false
	}
	return string(data), rerr == nil
}

// metricValue scrapes one counter/gauge from /metrics.
func metricValue(t *testing.T, baseURL, name string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if f, ok := strings.CutPrefix(line, name+" "); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("metric %s = %q: %v", name, f, err)
			}
			return n
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestGracefulShutdownInFlight wires an http.Server exactly as mxqd
// does (Serve on a real listener, then Shutdown on SIGTERM) and checks
// the graceful-drain contract: an in-flight streaming response runs to
// completion with the correct bytes, while new connections are refused
// the moment shutdown begins.
func TestGracefulShutdownInFlight(t *testing.T) {
	testutil.CheckGoroutines(t)
	db := mxq.Open()
	db.LoadXMark("auction.xml", 0.002, 11)
	srv := New(db, Config{})

	// large enough that the response cannot hide in socket buffers:
	// the handler is still writing while the client trickles reads
	const bigQuery = `for $i in 1 to 500000 return $i`
	want, err := db.QueryString(bigQuery)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Start the streaming request and read just the first byte — the
	// handler is now mid-stream, blocked on backpressure.
	reqBody, _ := json.Marshal(map[string]any{"query": bigQuery})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	first := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, first); err != nil {
		t.Fatalf("first byte: %v", err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- hs.Shutdown(ctx)
	}()

	// New connections must be refused as soon as the listener closes.
	refused := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		c, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			refused = true
			break
		}
		c.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections still accepted after Shutdown began")
	}

	// The in-flight response must stream to completion, byte-identical.
	rest, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("in-flight stream cut during graceful shutdown: %v", err)
	}
	if got := string(first) + string(rest); got != want {
		t.Fatalf("in-flight response corrupted: %d bytes, want %d", len(got), len(want))
	}

	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown did not drain within its deadline: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestShutdownDeadlineHonored checks the other half of the contract: a
// request that outlives the shutdown context makes Shutdown return
// DeadlineExceeded instead of hanging, and Close then tears the
// connection down so the executor's cancellation drains the workers.
func TestShutdownDeadlineHonored(t *testing.T) {
	testutil.CheckGoroutines(t)
	db := mxq.Open()
	db.LoadXMark("auction.xml", 0.002, 11)
	srv := New(db, Config{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// errors are expected once Close rips the connection away
		reqBody, _ := json.Marshal(map[string]any{"query": slowQuery})
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(reqBody))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// let the slow query reach the executor
	waitInflight(t, base, 5*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = hs.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded (a live request cannot drain in 50ms)", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown honored no deadline: returned after %v", elapsed)
	}
	hs.Close() // force-close the straggler; its context cancels the executor
	wg.Wait()
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// waitInflight polls /metrics until a request is inside the executor.
func waitInflight(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	for deadline := time.Now().Add(timeout); time.Now().Before(deadline); {
		if metricValue(t, base, "mxqd_inflight_queries") > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("query never became in-flight")
}
