// Package serve is the HTTP serving layer of the engine — the mxqd
// daemon's core. It exposes the statement-centric API of package mxq
// over the wire:
//
//	POST   /query            one-shot query, streamed XML/text response
//	POST   /prepare          compile a query, returns {id, vars}
//	POST   /stmt/{id}/exec   execute a prepared statement with JSON binds
//	DELETE /stmt/{id}        release a prepared statement
//	GET    /healthz          liveness probe
//	GET    /metrics          text-format counters and latency histogram
//
// Results stream to the response body through Result.SerializeXML —
// the serialized text is never materialized server-side. Every
// execution runs under the request's context plus the effective
// timeout, so client disconnects and deadlines cancel the executor at
// its operator checkpoints; the fork-join worker pool guarantees no
// goroutine outlives its request. Static query errors (parse errors
// and the XPST/XQST classes) map to 400, dynamic errors to 500,
// deadline expiry to 504, and resource exhaustion — a query exceeding
// its memory budget, or the scheduler's memory pool refusing another
// admission — to 503 (overload, not a defect of the query).
//
// Admission is scheduled, not shed at the door: every request —
// including its compile work — first admits itself with the engine's
// global query scheduler (or a server-private one sized by
// MaxInflight), waiting deadline-aware in a bounded queue for an
// execution slot. Only a full queue answers 503 immediately; a request
// whose deadline expires while queued answers 503 too, having done no
// work. Prepared statements are evicted under an idle TTL plus LRU
// overflow, so abandoned sessions cannot wedge /prepare.
package serve

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mxq"
	"mxq/internal/faults"
	"mxq/internal/sched"
)

// Config tunes one Server. The zero value serves with the defaults
// noted per field.
type Config struct {
	// MaxInflight bounds concurrently executing queries across all
	// endpoints. Further requests queue (see MaxQueue) until a slot
	// frees or their deadline expires. When the DB's engine carries its
	// own scheduler (mxq.WithScheduler), that scheduler's limits govern
	// admission and MaxInflight/MaxQueue are ignored. 0 means
	// DefaultMaxInflight.
	MaxInflight int
	// MaxQueue bounds the requests waiting for an execution slot;
	// beyond it the server answers 503 immediately. 0 means
	// 2×MaxInflight; negative disables queueing (a saturated server
	// rejects instantly, the pre-scheduler behavior).
	MaxQueue int
	// MaxStmts bounds the live prepared statements; preparing beyond it
	// evicts the least-recently-used statement rather than failing.
	// 0 means DefaultMaxStmts.
	MaxStmts int
	// StmtTTL evicts prepared statements idle longer than this (no
	// exec, no lookup). 0 means DefaultStmtTTL; negative disables
	// idle eviction.
	StmtTTL time.Duration
	// DefaultTimeout applies to executions whose request does not set
	// timeout_ms. 0 means DefaultQueryTimeout; negative disables the
	// default deadline (the request context still cancels).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms. 0 means
	// DefaultMaxTimeout.
	MaxTimeout time.Duration
	// MaxRequestBytes bounds request bodies. 0 means
	// DefaultMaxRequestBytes.
	MaxRequestBytes int64
}

// Defaults for the zero Config.
const (
	DefaultMaxInflight     = 64
	DefaultMaxStmts        = 1024
	DefaultStmtTTL         = 15 * time.Minute
	DefaultQueryTimeout    = 30 * time.Second
	DefaultMaxTimeout      = 5 * time.Minute
	DefaultMaxRequestBytes = 1 << 20
)

func (c Config) withDefaults() Config {
	if c.MaxInflight == 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxInflight
	}
	if c.MaxStmts == 0 {
		c.MaxStmts = DefaultMaxStmts
	}
	if c.StmtTTL == 0 {
		c.StmtTTL = DefaultStmtTTL
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = DefaultQueryTimeout
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = DefaultMaxTimeout
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = DefaultMaxRequestBytes
	}
	return c
}

// Server serves one DB over HTTP. Create with New, install via
// Handler; it is safe for any number of concurrent requests.
type Server struct {
	db    *mxq.DB
	cfg   Config
	mux   *http.ServeMux
	sched *sched.Scheduler // admission + worker pool; never nil
	now   func() time.Time // statement-eviction clock (tests inject)

	mu     sync.Mutex
	stmts  map[string]*stmtEntry
	lru    *list.List // of *stmtEntry; front = most recently used
	nextID int64

	metrics metrics
}

// stmtEntry is one registered prepared statement plus its eviction
// bookkeeping (guarded by Server.mu).
type stmtEntry struct {
	id       string
	stmt     *mxq.Stmt
	lastUsed time.Time
	elem     *list.Element
}

// New builds a Server over db. When db's engine runs under a global
// scheduler the server admits requests through it; otherwise the
// server builds a private scheduler sized by MaxInflight/MaxQueue so
// admission is always scheduled.
func New(db *mxq.DB, cfg Config) *Server {
	s := &Server{
		db:    db,
		cfg:   cfg.withDefaults(),
		mux:   http.NewServeMux(),
		now:   time.Now,
		stmts: make(map[string]*stmtEntry),
		lru:   list.New(),
	}
	s.sched = db.Engine().Scheduler()
	if s.sched == nil {
		s.sched = sched.New(sched.Config{
			MaxConcurrent: s.cfg.MaxInflight,
			MaxQueue:      s.cfg.MaxQueue,
		})
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /prepare", s.handlePrepare)
	s.mux.HandleFunc("POST /stmt/{id}/exec", s.handleExec)
	s.mux.HandleFunc("DELETE /stmt/{id}", s.handleClose)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StmtCount reports the live prepared statements (metrics, tests).
func (s *Server) StmtCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stmts)
}

// queryRequest is the JSON body of /query and /stmt/{id}/exec. For
// /query the query text is required; for exec it is ignored.
type queryRequest struct {
	Query string `json:"query"`
	// Binds supplies external variables: number, string, bool, or an
	// array of those (a sequence). JSON integers bind as xs:integer,
	// other numbers as xs:double.
	Binds map[string]json.RawMessage `json:"binds"`
	// TimeoutMS overrides the server's default query timeout, capped
	// by the server's maximum.
	TimeoutMS int64 `json:"timeout_ms"`
}

// errorBody is the JSON error response of every endpoint.
type errorBody struct {
	Error string `json:"error"`
	// Code is the W3C error code when the failure is a typed XQuery
	// error ("" otherwise).
	Code string `json:"code,omitempty"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Error: err.Error()}
	if qe := mxq.AsQueryError(err); qe != nil {
		body.Code = qe.Code
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// execStatus maps an execution error to its HTTP status: deadline and
// cancellation map to 504, a memory-budget overrun to 503 (the same
// query may succeed under a larger budget or a quieter server — it is
// overload, not a defect), static query errors to 400 (the query can
// never run), everything else — dynamic errors, contained internal
// panics — to 500.
func execStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	if mxq.IsResourceLimit(err) {
		return http.StatusServiceUnavailable
	}
	if qe := mxq.AsQueryError(err); qe != nil && qe.Static() {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*queryRequest, bool) {
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return nil, false
	}
	return &req, true
}

// execContext derives the execution context: the request context (so a
// client disconnect cancels the executor) plus the effective timeout.
func (s *Server) execContext(r *http.Request, req *queryRequest) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if timeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), timeout)
}

// admit waits — deadline-aware, up to the request's remaining timeout
// — for an execution slot. A full admission queue answers 503
// immediately; a deadline that expires while queued answers 503 too
// (the request did no work, so 504 would be misleading). The grant is
// admitted with no cost hints: the budget is finalized by the
// execution once the plan is compiled.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) (*sched.Grant, bool) {
	start := time.Now()
	g, err := s.sched.Admit(ctx, sched.Cost{})
	s.metrics.queueWait.observe(time.Since(start))
	if err != nil {
		s.metrics.rejected.Add(1)
		switch {
		case errors.Is(err, sched.ErrQueueFull):
			writeError(w, http.StatusServiceUnavailable, errors.New("too many queries in flight"))
		case errors.Is(err, sched.ErrMemExhausted):
			s.metrics.memRejected.Add(1)
			writeError(w, http.StatusServiceUnavailable, errors.New("server memory pool exhausted; retry when running queries finish"))
		default:
			writeError(w, http.StatusServiceUnavailable, errors.New("no execution slot within the request deadline"))
		}
		return nil, false
	}
	s.metrics.inflight.Add(1)
	return g, true
}

func (s *Server) release(g *sched.Grant) {
	s.metrics.inflight.Add(-1)
	g.Release()
}

// run executes stmt under ctx — which must carry the request's
// admission grant — and streams the result. Latency is measured to
// end-of-stream: serialization is the dominant cost of large results,
// so stopping the clock at executor completion would hide it.
func (s *Server) run(ctx context.Context, w http.ResponseWriter, stmt *mxq.Stmt) {
	start := time.Now()
	res, err := stmt.ExecContext(ctx)
	if err != nil {
		s.metrics.observe(time.Since(start), err)
		writeError(w, execStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	// The result streams from here; a serialization failure usually
	// means the client went away — nothing useful can be written
	// anymore, but the failure is counted.
	serr := res.SerializeXML(faultWriter{w})
	s.metrics.observe(time.Since(start), nil)
	if serr != nil {
		s.metrics.serializeFailures.Add(1)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New(`missing "query"`))
		return
	}
	ctx, cancel := s.execContext(r, req)
	defer cancel()
	// Admission comes before compilation: a flood of compile-heavy (or
	// parse-error) requests must not bypass the concurrency limit.
	g, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer s.release(g)
	stmt, err := s.db.Prepare(req.Query)
	if err != nil {
		s.metrics.compileErrors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	stmt, ok = s.bindAll(w, stmt, req.Binds)
	if !ok {
		return
	}
	s.run(sched.WithGrant(ctx, g), w, stmt)
}

// prepareResponse is the JSON body answering /prepare.
type prepareResponse struct {
	ID   string    `json:"id"`
	Vars []varInfo `json:"vars"`
}

type varInfo struct {
	Name      string `json:"name"`
	Required  bool   `json:"required"`
	Singleton bool   `json:"singleton"`
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New(`missing "query"`))
		return
	}
	ctx, cancel := s.execContext(r, req)
	defer cancel()
	// Compilation runs under admission like any execution: preparing is
	// the compile-heavy path, so it must not bypass the limit either.
	g, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	stmt, err := s.db.Prepare(req.Query)
	s.release(g)
	if err != nil {
		s.metrics.compileErrors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := prepareResponse{}
	for _, v := range stmt.Vars() {
		resp.Vars = append(resp.Vars, varInfo{Name: v.Name, Required: v.Required, Singleton: v.Singleton})
	}
	resp.ID = s.register(stmt)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// register adds stmt to the statement registry, evicting idle-expired
// statements first and then — if the registry is still full — the
// least recently used one, so /prepare always succeeds and abandoned
// sessions cannot wedge it into 503.
func (s *Server) register(stmt *mxq.Stmt) string {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(now)
	for len(s.stmts) >= s.cfg.MaxStmts {
		s.evictLocked(s.lru.Back().Value.(*stmtEntry))
	}
	s.nextID++
	e := &stmtEntry{id: "s" + strconv.FormatInt(s.nextID, 10), stmt: stmt, lastUsed: now}
	e.elem = s.lru.PushFront(e)
	s.stmts[e.id] = e
	return e.id
}

// sweepLocked evicts statements idle past the TTL, scanning from the
// LRU tail so it stops at the first live one (O(evicted), not
// O(statements)). Callers hold s.mu.
func (s *Server) sweepLocked(now time.Time) {
	if s.cfg.StmtTTL < 0 {
		return
	}
	for el := s.lru.Back(); el != nil; el = s.lru.Back() {
		e := el.Value.(*stmtEntry)
		if now.Sub(e.lastUsed) <= s.cfg.StmtTTL {
			return
		}
		s.evictLocked(e)
	}
}

func (s *Server) evictLocked(e *stmtEntry) {
	delete(s.stmts, e.id)
	s.lru.Remove(e.elem)
	s.metrics.stmtsEvicted.Add(1)
}

// lookup resolves a statement id, refreshing its eviction clock and
// LRU position. Evicting a statement mid-execution is safe — a Stmt is
// immutable and the execution holds its own pointer — so lookup also
// opportunistically sweeps idle statements.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*mxq.Stmt, string, bool) {
	id := r.PathValue("id")
	now := s.now()
	s.mu.Lock()
	s.sweepLocked(now)
	e, ok := s.stmts[id]
	if ok {
		e.lastUsed = now
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no prepared statement %q", id))
		return nil, id, false
	}
	return e.stmt, id, true
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	stmt, _, ok := s.lookup(w, r)
	if !ok {
		return
	}
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	stmt, ok = s.bindAll(w, stmt, req.Binds)
	if !ok {
		return
	}
	ctx, cancel := s.execContext(r, req)
	defer cancel()
	g, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer s.release(g)
	s.run(sched.WithGrant(ctx, g), w, stmt)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	_, id, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	if e, ok := s.stmts[id]; ok {
		delete(s.stmts, id)
		s.lru.Remove(e.elem)
	}
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// faultWriter is the serve.stream fault point: when the fault registry
// arms serve.stream, response-body writes fail with the injected error
// — the chaos suite's stand-in for a client that vanishes mid-stream.
// A no-op passthrough when faults are disarmed.
type faultWriter struct{ w io.Writer }

func (f faultWriter) Write(p []byte) (int, error) {
	if err := faults.ServeStream.Err(); err != nil {
		return 0, err
	}
	return f.w.Write(p)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// bindAll converts the request's JSON binds to typed values. Stmt.Bind
// is copy-on-write, so the registered statement is never mutated —
// concurrent execs of one statement id with different binds are
// independent.
func (s *Server) bindAll(w http.ResponseWriter, stmt *mxq.Stmt, binds map[string]json.RawMessage) (*mxq.Stmt, bool) {
	for name, raw := range binds {
		v, err := decodeValue(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bind $%s: %w", name, err))
			return nil, false
		}
		stmt = stmt.Bind(name, v)
	}
	return stmt, true
}

// decodeValue maps a JSON value to a typed XQuery sequence: integers
// to xs:integer, other numbers to xs:double, strings and booleans to
// their xs: counterparts, arrays to sequences of the above.
func decodeValue(raw json.RawMessage) (mxq.Value, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return mxq.Value{}, err
	}
	return toValue(v)
}

func toValue(v any) (mxq.Value, error) {
	switch x := v.(type) {
	case json.Number:
		if i, err := strconv.ParseInt(x.String(), 10, 64); err == nil {
			return mxq.Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return mxq.Value{}, fmt.Errorf("bad number %q", x.String())
		}
		return mxq.Float(f), nil
	case string:
		return mxq.String(x), nil
	case bool:
		return mxq.Bool(x), nil
	case []any:
		items := make([]mxq.Value, 0, len(x))
		for _, el := range x {
			ev, err := toValue(el)
			if err != nil {
				return mxq.Value{}, err
			}
			if _, nested := el.([]any); nested {
				return mxq.Value{}, errors.New("sequences do not nest")
			}
			items = append(items, ev)
		}
		return mxq.Sequence(items...), nil
	default:
		return mxq.Value{}, fmt.Errorf("unsupported bind type %T (want number, string, bool, or array)", v)
	}
}
