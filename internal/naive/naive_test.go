package naive

import (
	"strings"
	"testing"
)

const auctionDoc = `<site><people><person id="person0"><name>Ada</name><age>30</age></person><person id="person1"><name>Bob</name><age>25</age></person><person id="person2"><name>Cyd</name></person></people><items><item id="i0" price="10"><name>chair</name></item><item id="i1" price="30"><name>table with gold leaf</name></item><item id="i2" price="20"><name>lamp</name></item></items></site>`

func interp(t *testing.T) *Interp {
	t.Helper()
	in := New()
	if err := in.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	return in
}

func q(t *testing.T, in *Interp, query, want string) {
	t.Helper()
	got, err := in.QueryString(query)
	if err != nil {
		t.Fatalf("Query(%s): %v", query, err)
	}
	if got != want {
		t.Errorf("Query(%s):\n got  %q\n want %q", query, got, want)
	}
}

func TestBasicExpressions(t *testing.T) {
	in := interp(t)
	q(t, in, `1 + 2 * 3`, "7")
	q(t, in, `(1, 2, 3)`, "1 2 3")
	q(t, in, `10 div 4`, "2.5")
	q(t, in, `10 idiv 4`, "2")
	q(t, in, `10 mod 4`, "2")
	q(t, in, `-(5)`, "-5")
	q(t, in, `1 to 4`, "1 2 3 4")
	q(t, in, `"a" = "a"`, "true")
	q(t, in, `2 < 1`, "false")
	q(t, in, `if (1 < 2) then "y" else "n"`, "y")
	q(t, in, `concat("a", "b", "c")`, "abc")
	q(t, in, `contains("gold leaf", "gold")`, "true")
	q(t, in, `string-length("abcd")`, "4")
	q(t, in, `count((1,2,3))`, "3")
	q(t, in, `sum((1,2,3))`, "6")
	q(t, in, `avg((2,4))`, "3")
	q(t, in, `min((3,1,2))`, "1")
	q(t, in, `max((3,1,2))`, "3")
	q(t, in, `empty(())`, "true")
	q(t, in, `exists(())`, "false")
	q(t, in, `not(0)`, "true")
	q(t, in, `distinct-values((1, 2, 1, "a", "a"))`, "1 2 a")
	q(t, in, `(1,2)[. = 1] + 1`, "2") // filter expression over atoms
}

func TestPaths(t *testing.T) {
	in := interp(t)
	q(t, in, `/site/people/person/name/text()`, "AdaBobCyd")
	q(t, in, `/site/people/person[@id="person1"]/name/text()`, "Bob")
	q(t, in, `count(//item)`, "3")
	q(t, in, `count(/site//name)`, "6")
	q(t, in, `/site/items/item[2]/name/text()`, "table with gold leaf")
	q(t, in, `/site/items/item[last()]/name/text()`, "lamp")
	q(t, in, `count(/site/people/person[age])`, "2")
	q(t, in, `/site/people/person[age > 26]/name/text()`, "Ada")
	q(t, in, `count(/site/items/item/@price)`, "3")
	q(t, in, `string(/site/items/item[1]/@price)`, "10")
	// reverse and sibling axes
	q(t, in, `/site/items/item[1]/following-sibling::item[1]/name/text()`, "table with gold leaf")
	q(t, in, `/site/items/item[3]/preceding-sibling::item[1]/name/text()`, "chair")
	q(t, in, `count(/site/items/item[2]/ancestor::*)`, "2")
	q(t, in, `/site/items/item[2]/parent::items/../people/person[1]/name/text()`, "Ada")
	q(t, in, `count(/site/people/following::item)`, "3")
	q(t, in, `count(/site/items/preceding::person)`, "3")
}

func TestFLWOR(t *testing.T) {
	in := interp(t)
	q(t, in, `for $p in /site/people/person return $p/name/text()`, "AdaBobCyd")
	q(t, in, `for $p at $i in /site/people/person return ($i, $p/name/text())`, "1Ada2Bob3Cyd")
	q(t, in, `for $p in /site/people/person where $p/age return $p/name/text()`, "AdaBob")
	q(t, in, `for $i in /site/items/item order by number($i/@price) descending return $i/name/text()`,
		"table with gold leaflampchair")
	q(t, in, `for $i in /site/items/item let $n := $i/name where contains($n, "gold") return $n/text()`,
		"table with gold leaf")
	q(t, in, `for $x in (1,2), $y in (10,20) return $x + $y`, "11 21 12 22")
	q(t, in, `let $s := (1,2,3) return count($s)`, "3")
}

func TestJoinsAndQuantifiers(t *testing.T) {
	in := interp(t)
	// value join person names against items (contrived but exercises the path)
	q(t, in, `for $p in /site/people/person, $i in /site/items/item
	          where $p/@id = "person0" and $i/@price = "10"
	          return concat($p/name/text(), "-", $i/name/text())`, "Ada-chair")
	q(t, in, `some $i in /site/items/item satisfies number($i/@price) > 25`, "true")
	q(t, in, `every $i in /site/items/item satisfies number($i/@price) > 25`, "false")
	q(t, in, `some $a in /site/items/item, $b in /site/items/item satisfies $a << $b`, "true")
}

func TestConstructors(t *testing.T) {
	in := interp(t)
	q(t, in, `<out>{count(//item)}</out>`, "<out>3</out>")
	q(t, in, `<a x="{1+1}">t</a>`, `<a x="2">t</a>`)
	q(t, in, `<w>{/site/items/item[1]/name}</w>`, "<w><name>chair</name></w>")
	q(t, in, `for $p in /site/people/person[age] return <p n="{$p/name/text()}"/>`,
		`<p n="Ada"/><p n="Bob"/>`)
	q(t, in, `<m>{1, 2}</m>`, "<m>1 2</m>")
	q(t, in, `<m>{/site/items/item[1]/@price}</m>`, `<m price="10"/>`)
}

func TestUserDefinedFunctions(t *testing.T) {
	in := interp(t)
	q(t, in, `declare function local:twice($x) { 2 * $x }; local:twice(21)`, "42")
	q(t, in, `declare function local:gross($v) { 2.20371 * $v };
	          local:gross(10)`, "22.037100000000002")
	// recursion works in the naive interpreter
	q(t, in, `declare function local:fact($n) { if ($n <= 1) then 1 else $n * local:fact($n - 1) };
	          local:fact(5)`, "120")
}

func TestErrors(t *testing.T) {
	in := interp(t)
	bad := []string{
		`$undeclared`,
		`exactly-one(())`,
		`zero-or-one((1,2))`,
		`one-or-more(())`,
		`nosuchfn(1)`,
		`doc("missing.xml")`,
	}
	for _, src := range bad {
		if _, err := in.Query(src); err == nil {
			t.Errorf("Query(%q) succeeded, want error", src)
		}
	}
}

func TestDocOrderAndDedup(t *testing.T) {
	in := interp(t)
	// union dedups and sorts in document order
	q(t, in, `count(/site/items/item | /site/items/item)`, "3")
	q(t, in, `for $n in (/site/items/item[2] | /site/items/item[1]) return string($n/@id)`, "i0 i1")
	// parent steps dedup: three items share one parent
	q(t, in, `count(/site/items/item/..)`, "1")
}

func TestNodeIdentityOfConstructors(t *testing.T) {
	in := interp(t)
	// two constructions are distinct nodes
	q(t, in, `let $a := <x/> let $b := <x/> return $a is $b`, "false")
	q(t, in, `let $a := <x/> return $a is $a`, "true")
}
