package naive

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"

	"mxq/internal/store"
	"mxq/internal/xqerr"
	"mxq/internal/xqp"
	"mxq/internal/xqt"
)

// maxUDFDepth bounds user-defined function recursion.
const maxUDFDepth = 512

func (in *Interp) evalCall(c *xqp.Call, env *scope) ([]Val, error) {
	if f, ok := in.funcs[c.Name]; ok {
		if len(c.Args) != len(f.Params) {
			return nil, xqerr.Newf("XPST0017", "%s expects %d arguments", c.Name, len(f.Params))
		}
		if in.depth >= maxUDFDepth {
			return nil, fmt.Errorf("naive: user function recursion deeper than %d", maxUDFDepth)
		}
		// function bodies see the prolog variables (externals and
		// globals) but not the caller's locals; parameters shadow
		fenv := &scope{vars: make(map[string][]Val, len(in.prolog)+len(f.Params))}
		for name, v := range in.prolog {
			fenv.vars[name] = v
		}
		for i, p := range f.Params {
			v, err := in.eval(c.Args[i], env)
			if err != nil {
				return nil, err
			}
			fenv.vars[p] = v
		}
		in.depth++
		defer func() { in.depth-- }()
		return in.eval(f.Body, fenv)
	}
	args := make([][]Val, len(c.Args))
	for i, a := range c.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return in.callBuiltin(c.Name, args, env)
}

func single(args [][]Val, i int) (xqt.Item, bool) {
	if i >= len(args) || len(args[i]) == 0 {
		return xqt.Item{}, false
	}
	return args[i][0].Atomize(), true
}

func (in *Interp) callBuiltin(name string, args [][]Val, env *scope) ([]Val, error) {
	switch name {
	case "true":
		return []Val{atomVal(xqt.Bool(true))}, nil
	case "false":
		return []Val{atomVal(xqt.Bool(false))}, nil
	case "count":
		return []Val{atomVal(xqt.Int(int64(len(args[0]))))}, nil
	case "empty":
		return []Val{atomVal(xqt.Bool(len(args[0]) == 0))}, nil
	case "exists":
		return []Val{atomVal(xqt.Bool(len(args[0]) != 0))}, nil
	case "not":
		b, err := ebv(args[0])
		if err != nil {
			return nil, err
		}
		return []Val{atomVal(xqt.Bool(!b))}, nil
	case "boolean":
		b, err := ebv(args[0])
		if err != nil {
			return nil, err
		}
		return []Val{atomVal(xqt.Bool(b))}, nil
	case "sum":
		allInt := true
		var si int64
		var sf float64
		for _, v := range args[0] {
			a := v.Atomize()
			if a.K == xqt.KInt {
				si += a.I
			} else {
				allInt = false
			}
			sf += a.AsDouble()
		}
		if allInt {
			return []Val{atomVal(xqt.Int(si))}, nil
		}
		return []Val{atomVal(xqt.Double(sf))}, nil
	case "avg":
		if len(args[0]) == 0 {
			return nil, nil
		}
		var sf float64
		for _, v := range args[0] {
			sf += v.Atomize().AsDouble()
		}
		return []Val{atomVal(xqt.Double(sf / float64(len(args[0]))))}, nil
	case "min", "max":
		if len(args[0]) == 0 {
			return nil, nil
		}
		best := args[0][0].Atomize()
		for _, v := range args[0][1:] {
			a := v.Atomize()
			if (name == "min") == xqt.SortLess(a, best) {
				best = a
			}
		}
		return []Val{atomVal(best)}, nil
	case "string":
		it, ok := single(args, 0)
		if !ok {
			return []Val{atomVal(xqt.Str(""))}, nil
		}
		return []Val{atomVal(xqt.Str(it.AsString()))}, nil
	case "data":
		out := make([]Val, len(args[0]))
		for i, v := range args[0] {
			out[i] = atomVal(v.Atomize())
		}
		return out, nil
	case "number":
		it, ok := single(args, 0)
		if !ok {
			return []Val{atomVal(xqt.Double(math.NaN()))}, nil
		}
		return []Val{atomVal(xqt.Double(it.AsDouble()))}, nil
	case "contains", "starts-with":
		a, _ := single(args, 0)
		b, _ := single(args, 1)
		if name == "contains" {
			return []Val{atomVal(xqt.Bool(strings.Contains(a.AsString(), b.AsString())))}, nil
		}
		return []Val{atomVal(xqt.Bool(strings.HasPrefix(a.AsString(), b.AsString())))}, nil
	case "concat":
		var sb strings.Builder
		for i := range args {
			if it, ok := single(args, i); ok {
				sb.WriteString(it.AsString())
			}
		}
		return []Val{atomVal(xqt.Str(sb.String()))}, nil
	case "string-length":
		// characters, not bytes: string-length("héllo") is 5
		it, _ := single(args, 0)
		return []Val{atomVal(xqt.Int(int64(utf8.RuneCountInString(it.AsString()))))}, nil
	case "floor", "ceiling", "round":
		it, ok := single(args, 0)
		if !ok {
			return nil, nil
		}
		f := it.AsDouble()
		switch name {
		case "floor":
			f = math.Floor(f)
		case "ceiling":
			f = math.Ceil(f)
		default:
			f = xqt.Round(f)
		}
		return []Val{atomVal(xqt.Double(f))}, nil
	case "distinct-values":
		seen := make(map[string]bool)
		var out []Val
		for _, v := range args[0] {
			a := v.Atomize()
			k := valueKey(a)
			if !seen[k] {
				seen[k] = true
				out = append(out, atomVal(a))
			}
		}
		return out, nil
	case "zero-or-one":
		if len(args[0]) > 1 {
			return nil, xqerr.Newf("FORG0003", "zero-or-one applied to a sequence of %d items", len(args[0]))
		}
		return args[0], nil
	case "exactly-one":
		if len(args[0]) != 1 {
			return nil, xqerr.Newf("FORG0005", "exactly-one applied to a sequence of %d items", len(args[0]))
		}
		return args[0], nil
	case "one-or-more":
		if len(args[0]) == 0 {
			return nil, xqerr.Newf("FORG0004", "one-or-more applied to an empty sequence")
		}
		return args[0], nil
	case "name", "local-name":
		if len(args[0]) == 0 {
			return []Val{atomVal(xqt.Str(""))}, nil
		}
		v := args[0][0]
		var qn string
		switch {
		case v.Owner != nil:
			qn = v.Owner.Attrs[v.AIdx].Name
		case v.Node != nil:
			qn = v.Node.Name
		default:
			return nil, xqerr.Newf("XPTY0004", "name() of a non-node")
		}
		if name == "local-name" {
			qn = xqt.LocalName(qn)
		}
		return []Val{atomVal(xqt.Str(qn))}, nil
	case "doc":
		if len(args) != 1 {
			return nil, xqerr.Newf("XPST0017", "doc expects 1 argument")
		}
		if len(args[0]) > 1 {
			return nil, xqerr.Newf("XPTY0004", "doc() argument is a sequence of %d items", len(args[0]))
		}
		it, ok := single(args, 0)
		if !ok {
			return nil, nil
		}
		root, ok := in.docs[it.AsString()]
		if !ok {
			return nil, xqerr.Newf("FODC0002", "document %q not loaded", it.AsString())
		}
		return []Val{{Node: root}}, nil
	case "collection":
		if len(args) != 1 {
			return nil, xqerr.Newf("XPST0017", "collection expects 1 argument")
		}
		if len(args[0]) > 1 {
			return nil, xqerr.Newf("XPTY0004", "collection() argument is a sequence of %d items", len(args[0]))
		}
		it, ok := single(args, 0)
		if !ok {
			return nil, nil
		}
		roots, ok := in.collections[it.AsString()]
		if !ok {
			return nil, xqerr.Newf("FODC0004", "collection %q not available", it.AsString())
		}
		out := make([]Val, len(roots))
		for i, r := range roots {
			out[i] = Val{Node: r}
		}
		return out, nil
	case "last":
		if env.ctxItem == nil {
			return nil, xqerr.Newf("XPDY0002", "last() outside a predicate")
		}
		return []Val{atomVal(xqt.Int(int64(env.ctxSize)))}, nil
	case "position":
		if env.ctxItem == nil {
			return nil, xqerr.Newf("XPDY0002", "position() outside a predicate")
		}
		return []Val{atomVal(xqt.Int(int64(env.ctxPos)))}, nil
	}
	return nil, xqerr.Newf("XPST0017", "unknown function %s#%d", name, len(args))
}

// valueKey normalizes an atom for distinct-values: numeric values compare
// numerically (so 1 and 1.0 are one value), booleans only against
// booleans, everything else as strings (mirrors ralg's rowKey policy;
// values of incomparable types are distinct per the XQuery spec).
func valueKey(a xqt.Item) string {
	switch {
	case a.IsNumeric():
		return fmt.Sprintf("n%v", a.AsDouble())
	case a.K == xqt.KBool:
		return "b" + a.AsString()
	}
	return "s" + a.AsString()
}

func (in *Interp) evalCtor(c *xqp.ElemCtor, env *scope) ([]Val, error) {
	elem := &Node{Kind: store.KindElem, Name: c.Name}
	in.ord++
	elem.Ord = in.ord
	for _, a := range c.Attrs {
		var sb strings.Builder
		for _, part := range a.Parts {
			switch p := part.(type) {
			case *xqp.Literal:
				sb.WriteString(p.S)
			default:
				v, err := in.eval(part, env)
				if err != nil {
					return nil, err
				}
				for i, item := range v {
					if i > 0 {
						sb.WriteString(" ")
					}
					sb.WriteString(item.Atomize().AsString())
				}
			}
		}
		elem.Attrs = append(elem.Attrs, Attr{Name: a.Name, Val: sb.String()})
	}
	pendingText := ""
	sawContent := false
	flush := func() {
		if pendingText != "" {
			in.ord++
			t := &Node{Kind: store.KindText, Text: pendingText, Parent: elem, Ord: in.ord}
			elem.Children = append(elem.Children, t)
			pendingText = ""
		}
	}
	addAtom := func(s string) {
		if pendingText != "" {
			pendingText += " " + s
		} else {
			pendingText = s
			sawContent = sawContent || s != ""
		}
	}
	for _, part := range c.Content {
		// literal text chunks and enclosed expressions are both treated
		// as content atoms; adjacent atoms join with a single space (the
		// same policy the relational constructor operator applies)
		v, err := in.eval(part, env)
		if err != nil {
			return nil, err
		}
		for _, item := range v {
			switch {
			case item.Node != nil:
				flush()
				if item.Node.Kind == store.KindDoc {
					for _, ch := range item.Node.Children {
						elem.Children = append(elem.Children, in.copyTree(ch, elem))
					}
				} else {
					elem.Children = append(elem.Children, in.copyTree(item.Node, elem))
				}
				sawContent = true
			case item.Owner != nil:
				if sawContent || pendingText != "" {
					return nil, xqerr.Newf("XQTY0024", "attribute node after content in element constructor")
				}
				a := item.Owner.Attrs[item.AIdx]
				elem.Attrs = append(elem.Attrs, Attr{Name: a.Name, Val: a.Val})
			default:
				addAtom(item.Atom.AsString())
			}
		}
	}
	flush()
	return []Val{{Node: elem}}, nil
}

// copyTree deep-copies a subtree, assigning fresh document-order ranks.
func (in *Interp) copyTree(n *Node, parent *Node) *Node {
	in.ord++
	cp := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text, Parent: parent, Ord: in.ord}
	cp.Attrs = append(cp.Attrs, n.Attrs...)
	for _, ch := range n.Children {
		cp.Children = append(cp.Children, in.copyTree(ch, cp))
	}
	return cp
}
