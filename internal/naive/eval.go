package naive

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"mxq/internal/store"
	"mxq/internal/xqerr"
	"mxq/internal/xqp"
	"mxq/internal/xqt"
)

// Interp is a naive XQuery interpreter instance holding loaded documents.
type Interp struct {
	docs        map[string]*Node
	collections map[string][]*Node
	defaultDoc  string
	ord         int64
	funcs       map[string]*xqp.FuncDecl
	prolog      map[string][]Val // prolog variables of the current query
	depth       int
}

// New returns an empty interpreter.
func New() *Interp {
	return &Interp{
		docs:        make(map[string]*Node),
		collections: make(map[string][]*Node),
	}
}

// LoadXML parses and registers a document. The first loaded document
// becomes the context document for absolute paths.
func (in *Interp) LoadXML(name string, r io.Reader) error {
	c, err := store.Shred(name, r, false)
	if err != nil {
		return err
	}
	in.LoadContainer(name, c)
	return nil
}

// LoadContainer registers a pre-shredded document.
func (in *Interp) LoadContainer(name string, c *store.Container) {
	root := FromContainer(c, &in.ord)
	in.docs[name] = root
	if in.defaultDoc == "" {
		in.defaultDoc = name
	}
}

// LoadDOM registers an already built DOM tree (its ords must come from
// this interpreter's counter).
func (in *Interp) LoadDOM(name string, root *Node) {
	in.docs[name] = root
	if in.defaultDoc == "" {
		in.defaultDoc = name
	}
}

// OrdCounter exposes the document-order counter for external builders.
func (in *Interp) OrdCounter() *int64 { return &in.ord }

// AddCollectionDOM appends an already built document root to the named
// collection (creating it if needed). collection() enumerates documents
// in insertion order, so callers mirroring a relational ShardedPool must
// insert in that pool's DocNames() order. Collection documents are not
// addressable via doc(), matching the relational engine.
func (in *Interp) AddCollectionDOM(coll string, root *Node) {
	in.collections[coll] = append(in.collections[coll], root)
}

// AddCollectionXML parses a document and appends it to the named
// collection.
func (in *Interp) AddCollectionXML(coll, docName string, r io.Reader) error {
	c, err := store.Shred(docName, r, false)
	if err != nil {
		return err
	}
	in.AddCollectionDOM(coll, FromContainer(c, &in.ord))
	return nil
}

// Query parses and evaluates a query, returning the result sequence.
func (in *Interp) Query(q string) ([]Val, error) {
	return in.QueryBound(q, nil)
}

// QueryBound parses and evaluates a query under the given external
// variable bindings, mirroring the relational engine's prepared-query
// semantics exactly: prolog declarations are processed in order (a
// declaration sees only the declarations before it); non-external
// variables evaluate their init expressions; external variables take
// their binding, fall back to their default expression, or raise
// XPDY0002 when required and unbound. Binding an undeclared name is
// XPST0008; binding more than one item where the declaration's default
// is statically a single item is XPTY0004.
func (in *Interp) QueryBound(q string, binds map[string][]Val) ([]Val, error) {
	m, err := xqp.Parse(q)
	if err != nil {
		return nil, err
	}
	in.funcs = make(map[string]*xqp.FuncDecl)
	for _, f := range m.Funcs {
		in.funcs[f.Name] = f
	}
	for name := range binds {
		declared := false
		for _, d := range m.Vars {
			if d.External && d.Name == name {
				declared = true
				break
			}
		}
		if !declared {
			return nil, xqerr.Newf("XPST0008", "no external variable $%s declared", name)
		}
	}
	env := &scope{vars: make(map[string][]Val)}
	// prolog variables are visible inside user-defined function bodies
	// too (evalCall seeds function scopes from this map, which grows in
	// declaration order so a default's UDF call sees only earlier
	// declarations — matching the relational compiler's declLimit)
	in.prolog = env.vars
	for _, d := range m.Vars {
		if d.External {
			if vals, ok := binds[d.Name]; ok {
				if d.Init != nil && xqp.StaticSingleton(d.Init) && len(vals) > 1 {
					return nil, xqerr.Newf("XPTY0004", "external variable $%s expects a single item (its default is one) but is bound to %d items", d.Name, len(vals))
				}
				env.vars[d.Name] = vals
				continue
			}
			if d.Init == nil {
				return nil, xqerr.Newf("XPDY0002", "no value bound for external variable $%s", d.Name)
			}
		}
		v, err := in.eval(d.Init, env)
		if err != nil {
			return nil, err
		}
		env.vars[d.Name] = v
	}
	return in.eval(m.Body, env)
}

// QueryString evaluates the query and serializes its result.
func (in *Interp) QueryString(q string) (string, error) {
	return in.QueryStringBound(q, nil)
}

// QueryStringBound evaluates the query under bindings and serializes
// its result.
func (in *Interp) QueryStringBound(q string, binds map[string][]Val) (string, error) {
	seq, err := in.QueryBound(q, binds)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if err := SerializeSeq(&sb, seq); err != nil {
		return "", err
	}
	return sb.String(), nil
}

type scope struct {
	vars    map[string][]Val
	ctxItem *Val
	ctxPos  int
	ctxSize int
}

func (e *scope) child() *scope {
	vars := make(map[string][]Val, len(e.vars)+1)
	for k, v := range e.vars {
		vars[k] = v
	}
	return &scope{vars: vars, ctxItem: e.ctxItem, ctxPos: e.ctxPos, ctxSize: e.ctxSize}
}

func atomVal(it xqt.Item) Val { return Val{Atom: it} }

func (in *Interp) eval(e xqp.Expr, env *scope) ([]Val, error) {
	switch x := e.(type) {
	case *xqp.Literal:
		switch x.Kind {
		case xqp.LitInt:
			return []Val{atomVal(xqt.Int(x.I))}, nil
		case xqp.LitDouble:
			return []Val{atomVal(xqt.Double(x.F))}, nil
		default:
			return []Val{atomVal(xqt.Str(x.S))}, nil
		}
	case *xqp.VarRef:
		v, ok := env.vars[x.Name]
		if !ok {
			return nil, xqerr.Newf("XPST0008", "undeclared variable $%s", x.Name)
		}
		return v, nil
	case *xqp.ContextItem:
		if env.ctxItem == nil {
			return nil, xqerr.Newf("XPDY0002", "no context item")
		}
		return []Val{*env.ctxItem}, nil
	case *xqp.EmptySeq:
		return nil, nil
	case *xqp.Seq:
		var out []Val
		for _, item := range x.Items {
			v, err := in.eval(item, env)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	case *xqp.If:
		c, err := in.evalEBV(x.Cond, env)
		if err != nil {
			return nil, err
		}
		if c {
			return in.eval(x.Then, env)
		}
		return in.eval(x.Else, env)
	case *xqp.FLWOR:
		return in.evalFLWOR(x, env)
	case *xqp.Quantified:
		return in.evalQuantified(x, env)
	case *xqp.Binary:
		return in.evalBinary(x, env)
	case *xqp.Unary:
		v, err := in.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return nil, nil
		}
		a := v[0].Atomize()
		if a.K == xqt.KInt {
			return []Val{atomVal(xqt.Int(-a.I))}, nil
		}
		return []Val{atomVal(xqt.Double(-a.AsDouble()))}, nil
	case *xqp.Path:
		return in.evalPath(x, env)
	case *xqp.Call:
		return in.evalCall(x, env)
	case *xqp.ElemCtor:
		return in.evalCtor(x, env)
	}
	return nil, fmt.Errorf("naive: unhandled expression %T", e)
}

func (in *Interp) evalEBV(e xqp.Expr, env *scope) (bool, error) {
	v, err := in.eval(e, env)
	if err != nil {
		return false, err
	}
	return ebv(v)
}

func ebv(seq []Val) (bool, error) {
	if len(seq) == 0 {
		return false, nil
	}
	if seq[0].IsNode() {
		return true, nil
	}
	if len(seq) > 1 {
		return false, xqerr.Newf("FORG0006", "effective boolean value of a sequence of %d atomic values", len(seq))
	}
	it := seq[0].Atom
	switch it.K {
	case xqt.KBool, xqt.KInt:
		return it.I != 0, nil
	case xqt.KDouble:
		return it.F != 0 && !math.IsNaN(it.F), nil
	default:
		return it.S != "", nil
	}
}

func (in *Interp) evalFLWOR(f *xqp.FLWOR, env *scope) ([]Val, error) {
	// split off the (final) order-by clause if present
	clauses := f.Clauses
	var order *xqp.Clause
	if n := len(clauses); n > 0 && clauses[n-1].Kind == xqp.ClauseOrder {
		order = &clauses[n-1]
		clauses = clauses[:n-1]
	}
	var tuples []*scope
	var enumerate func(i int, cur *scope) error
	enumerate = func(i int, cur *scope) error {
		if i == len(clauses) {
			tuples = append(tuples, cur)
			return nil
		}
		c := clauses[i]
		switch c.Kind {
		case xqp.ClauseFor:
			seq, err := in.eval(c.Expr, cur)
			if err != nil {
				return err
			}
			for idx, v := range seq {
				next := cur.child()
				next.vars[c.Var] = []Val{v}
				if c.Pos != "" {
					next.vars[c.Pos] = []Val{atomVal(xqt.Int(int64(idx + 1)))}
				}
				if err := enumerate(i+1, next); err != nil {
					return err
				}
			}
			return nil
		case xqp.ClauseLet:
			seq, err := in.eval(c.Expr, cur)
			if err != nil {
				return err
			}
			next := cur.child()
			next.vars[c.Var] = seq
			return enumerate(i+1, next)
		case xqp.ClauseWhere:
			ok, err := in.evalEBV(c.Expr, cur)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return enumerate(i+1, cur)
		case xqp.ClauseOrder:
			return fmt.Errorf("naive: order by must be the last clause")
		}
		return nil
	}
	if err := enumerate(0, env.child()); err != nil {
		return nil, err
	}
	if order != nil {
		type keyed struct {
			env  *scope
			keys []xqt.Item
		}
		ks := make([]keyed, len(tuples))
		for i, tp := range tuples {
			ks[i] = keyed{env: tp}
			for _, k := range order.Keys {
				v, err := in.eval(k.Expr, tp)
				if err != nil {
					return nil, err
				}
				switch len(v) {
				case 0:
					ks[i].keys = append(ks[i].keys, xqt.EmptyLeast)
				case 1:
					ks[i].keys = append(ks[i].keys, v[0].Atomize())
				default:
					return nil, xqerr.Newf("XPTY0004", "order key is a sequence of %d items", len(v))
				}
			}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for ki, key := range order.Keys {
				x, y := ks[a].keys[ki], ks[b].keys[ki]
				if xqt.SortLess(x, y) {
					return !key.Desc
				}
				if xqt.SortLess(y, x) {
					return key.Desc
				}
			}
			return false
		})
		for i := range ks {
			tuples[i] = ks[i].env
		}
	}
	var out []Val
	for _, tp := range tuples {
		v, err := in.eval(f.Return, tp)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func (in *Interp) evalQuantified(q *xqp.Quantified, env *scope) ([]Val, error) {
	var enumerate func(i int, cur *scope) (bool, error)
	enumerate = func(i int, cur *scope) (bool, error) {
		if i == len(q.Vars) {
			return in.evalEBV(q.Satisfies, cur)
		}
		seq, err := in.eval(q.Seqs[i], cur)
		if err != nil {
			return false, err
		}
		for _, v := range seq {
			next := cur.child()
			next.vars[q.Vars[i]] = []Val{v}
			ok, err := enumerate(i+1, next)
			if err != nil {
				return false, err
			}
			if ok != q.Every {
				return ok, nil // found witness (some) or counterexample (every)
			}
		}
		return q.Every, nil
	}
	r, err := enumerate(0, env.child())
	if err != nil {
		return nil, err
	}
	return []Val{atomVal(xqt.Bool(r))}, nil
}

func (in *Interp) evalBinary(b *xqp.Binary, env *scope) ([]Val, error) {
	switch b.Op {
	case xqp.OpOr, xqp.OpAnd:
		l, err := in.evalEBV(b.L, env)
		if err != nil {
			return nil, err
		}
		if b.Op == xqp.OpOr && l {
			return []Val{atomVal(xqt.Bool(true))}, nil
		}
		if b.Op == xqp.OpAnd && !l {
			return []Val{atomVal(xqt.Bool(false))}, nil
		}
		r, err := in.evalEBV(b.R, env)
		if err != nil {
			return nil, err
		}
		return []Val{atomVal(xqt.Bool(r))}, nil
	}
	l, err := in.eval(b.L, env)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(b.R, env)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case xqp.OpGenEq, xqp.OpGenNe, xqp.OpGenLt, xqp.OpGenLe, xqp.OpGenGt, xqp.OpGenGe:
		op := map[xqp.BinOp]xqt.CmpOp{
			xqp.OpGenEq: xqt.CmpEq, xqp.OpGenNe: xqt.CmpNe, xqp.OpGenLt: xqt.CmpLt,
			xqp.OpGenLe: xqt.CmpLe, xqp.OpGenGt: xqt.CmpGt, xqp.OpGenGe: xqt.CmpGe,
		}[b.Op]
		for _, lv := range l {
			for _, rv := range r {
				if xqt.Compare(lv.Atomize(), rv.Atomize(), op) {
					return []Val{atomVal(xqt.Bool(true))}, nil
				}
			}
		}
		return []Val{atomVal(xqt.Bool(false))}, nil
	case xqp.OpValEq, xqp.OpValNe, xqp.OpValLt, xqp.OpValLe, xqp.OpValGt, xqp.OpValGe:
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		if len(l) > 1 || len(r) > 1 {
			return nil, xqerr.Newf("XPTY0004", "value comparison over sequences")
		}
		op := map[xqp.BinOp]xqt.CmpOp{
			xqp.OpValEq: xqt.CmpEq, xqp.OpValNe: xqt.CmpNe, xqp.OpValLt: xqt.CmpLt,
			xqp.OpValLe: xqt.CmpLe, xqp.OpValGt: xqt.CmpGt, xqp.OpValGe: xqt.CmpGe,
		}[b.Op]
		return []Val{atomVal(xqt.Bool(xqt.Compare(l[0].Atomize(), r[0].Atomize(), op)))}, nil
	case xqp.OpIs, xqp.OpBefore, xqp.OpAfter:
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		if len(l) > 1 || len(r) > 1 || !l[0].IsNode() || !r[0].IsNode() {
			return nil, xqerr.Newf("XPTY0004", "node comparison over non-singleton-node operands")
		}
		var res bool
		switch b.Op {
		case xqp.OpIs:
			res = l[0].Node == r[0].Node && l[0].Owner == r[0].Owner && l[0].AIdx == r[0].AIdx
		case xqp.OpBefore:
			res = docOrderLess(l[0], r[0])
		default:
			res = docOrderLess(r[0], l[0])
		}
		return []Val{atomVal(xqt.Bool(res))}, nil
	case xqp.OpAdd, xqp.OpSub, xqp.OpMul, xqp.OpDiv, xqp.OpIDiv, xqp.OpMod:
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		return []Val{atomVal(arith(b.Op, l[0].Atomize(), r[0].Atomize()))}, nil
	case xqp.OpRange:
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		lo := l[0].Atomize()
		hi := r[0].Atomize()
		var out []Val
		for v := lo.I; v <= hi.I; v++ {
			out = append(out, atomVal(xqt.Int(v)))
		}
		return out, nil
	case xqp.OpUnion:
		all := append(append([]Val{}, l...), r...)
		for _, v := range all {
			if !v.IsNode() {
				return nil, xqerr.Newf("XPTY0004", "union over non-nodes")
			}
		}
		return sortAndDedup(all), nil
	}
	return nil, fmt.Errorf("naive: unhandled binary op %v", b.Op)
}

// arith mirrors ralg's arithmetic promotion exactly.
func arith(op xqp.BinOp, a, b xqt.Item) xqt.Item {
	if a.K == xqt.KInt && b.K == xqt.KInt && op != xqp.OpDiv {
		x, y := a.I, b.I
		switch op {
		case xqp.OpAdd:
			return xqt.Int(x + y)
		case xqp.OpSub:
			return xqt.Int(x - y)
		case xqp.OpMul:
			return xqt.Int(x * y)
		case xqp.OpIDiv:
			if y == 0 {
				return xqt.Double(math.NaN())
			}
			return xqt.Int(x / y)
		case xqp.OpMod:
			if y == 0 {
				return xqt.Double(math.NaN())
			}
			return xqt.Int(x % y)
		}
	}
	x, y := a.AsDouble(), b.AsDouble()
	switch op {
	case xqp.OpAdd:
		return xqt.Double(x + y)
	case xqp.OpSub:
		return xqt.Double(x - y)
	case xqp.OpMul:
		return xqt.Double(x * y)
	case xqp.OpDiv:
		return xqt.Double(x / y)
	case xqp.OpIDiv:
		return xqt.Int(int64(x / y))
	case xqp.OpMod:
		return xqt.Double(math.Mod(x, y))
	}
	return xqt.Double(math.NaN())
}

func (in *Interp) evalPath(p *xqp.Path, env *scope) ([]Val, error) {
	var cur []Val
	start := 0
	if p.Absolute {
		root, ok := in.docs[in.defaultDoc]
		if !ok {
			return nil, fmt.Errorf("naive: no context document")
		}
		cur = []Val{{Node: root}}
		if len(p.Steps) == 0 {
			return cur, nil
		}
	} else {
		s := p.Steps[0]
		start = 1
		if s.Expr != nil {
			v, err := in.eval(s.Expr, env)
			if err != nil {
				return nil, err
			}
			v, err = in.applyPreds(v, s.Preds, env)
			if err != nil {
				return nil, err
			}
			cur = v
		} else {
			if env.ctxItem == nil {
				return nil, xqerr.Newf("XPDY0002", "relative path with no context item")
			}
			v, err := in.axisStep([]Val{*env.ctxItem}, s, env)
			if err != nil {
				return nil, err
			}
			cur = v
		}
	}
	for _, s := range p.Steps[start:] {
		v, err := in.axisStep(cur, s, env)
		if err != nil {
			return nil, err
		}
		cur = v
	}
	return cur, nil
}

// axisStep applies one axis step (with predicates) to every context node
// and returns the combined, deduplicated, document-ordered result.
func (in *Interp) axisStep(ctx []Val, s xqp.Step, env *scope) ([]Val, error) {
	if s.Expr != nil {
		return nil, fmt.Errorf("naive: primary expression in non-initial step")
	}
	var out []Val
	for _, c := range ctx {
		if !c.IsNode() {
			return nil, xqerr.Newf("XPTY0019", "path step applied to an atomic value")
		}
		res := stepFrom(c, s.Axis, s.Test)
		res, err := in.applyPreds(res, s.Preds, env)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return sortAndDedup(out), nil
}

func (in *Interp) applyPreds(seq []Val, preds []xqp.Expr, env *scope) ([]Val, error) {
	for _, pred := range preds {
		positional := xqp.PredIsPositional(pred)
		var kept []Val
		for i, v := range seq {
			pe := env.child()
			vv := v
			pe.ctxItem = &vv
			pe.ctxPos = i + 1
			pe.ctxSize = len(seq)
			if positional {
				pv, err := in.eval(pred, pe)
				if err != nil {
					return nil, err
				}
				if len(pv) == 1 && pv[0].Atomize().AsDouble() == float64(i+1) {
					kept = append(kept, v)
				}
				continue
			}
			ok, err := in.evalEBV(pred, pe)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, v)
			}
		}
		seq = kept
	}
	return seq, nil
}

// stepFrom evaluates one axis step from a single context node.
func stepFrom(c Val, axis xqp.Axis, test xqp.NodeTest) []Val {
	if c.Owner != nil {
		// attribute context: only parent and self produce results
		switch axis {
		case xqp.AxisParent:
			if matchTest(&Node{Kind: store.KindElem, Name: c.Owner.Name}, test) {
				return []Val{{Node: c.Owner}}
			}
		case xqp.AxisSelf:
			if test.Kind == xqp.TestAnyNode {
				return []Val{c}
			}
		}
		return nil
	}
	n := c.Node
	var out []Val
	add := func(m *Node) {
		if matchTest(m, test) {
			out = append(out, Val{Node: m})
		}
	}
	var walk func(*Node)
	walk = func(m *Node) {
		add(m)
		for _, ch := range m.Children {
			walk(ch)
		}
	}
	switch axis {
	case xqp.AxisChild:
		for _, ch := range n.Children {
			add(ch)
		}
	case xqp.AxisDescendant:
		for _, ch := range n.Children {
			walk(ch)
		}
	case xqp.AxisDescendantOrSelf:
		walk(n)
	case xqp.AxisSelf:
		add(n)
	case xqp.AxisParent:
		if n.Parent != nil {
			add(n.Parent)
		}
	case xqp.AxisAncestor:
		for a := n.Parent; a != nil; a = a.Parent {
			add(a)
		}
	case xqp.AxisAncestorOrSelf:
		for a := n; a != nil; a = a.Parent {
			add(a)
		}
	case xqp.AxisFollowingSibling:
		if n.Parent != nil {
			for _, sib := range n.Parent.Children {
				if sib.Ord > n.Ord {
					add(sib)
				}
			}
		}
	case xqp.AxisPrecedingSibling:
		if n.Parent != nil {
			for _, sib := range n.Parent.Children {
				if sib.Ord < n.Ord {
					add(sib)
				}
			}
		}
	case xqp.AxisFollowing:
		root := n
		for root.Parent != nil {
			root = root.Parent
		}
		end := maxOrd(n)
		var ff func(*Node)
		ff = func(m *Node) {
			if m.Ord > end {
				add(m)
			}
			for _, ch := range m.Children {
				ff(ch)
			}
		}
		ff(root)
	case xqp.AxisPreceding:
		root := n
		for root.Parent != nil {
			root = root.Parent
		}
		anc := map[*Node]bool{}
		for a := n; a != nil; a = a.Parent {
			anc[a] = true
		}
		var pf func(*Node)
		pf = func(m *Node) {
			if m.Ord < n.Ord && !anc[m] {
				add(m)
			}
			for _, ch := range m.Children {
				pf(ch)
			}
		}
		pf(root)
	case xqp.AxisAttribute:
		if n.Kind == store.KindElem {
			for i, a := range n.Attrs {
				if test.Kind == xqp.TestName && (test.Name == "" || test.Name == a.Name) {
					out = append(out, Val{Owner: n, AIdx: i})
				}
			}
		}
	}
	return out
}

func maxOrd(n *Node) int64 {
	m := n.Ord
	for _, ch := range n.Children {
		if v := maxOrd(ch); v > m {
			m = v
		}
	}
	return m
}

func matchTest(n *Node, t xqp.NodeTest) bool {
	switch t.Kind {
	case xqp.TestAnyNode:
		return true
	case xqp.TestName:
		return n.Kind == store.KindElem && (t.Name == "" || n.Name == t.Name)
	case xqp.TestText:
		return n.Kind == store.KindText
	case xqp.TestComment:
		return n.Kind == store.KindComment
	case xqp.TestPI:
		return n.Kind == store.KindPI
	case xqp.TestDocNode:
		return n.Kind == store.KindDoc
	}
	return false
}
