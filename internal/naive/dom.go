// Package naive is a straightforward DOM-based XQuery interpreter over the
// same AST the relational engine compiles. It plays two roles in the
// reproduction:
//
//   - the differential-testing oracle: engine results must match naive
//     results on the same documents and queries, and
//
//   - the comparator baseline of the performance study, standing in for
//     the non-relational systems of the paper's Table 1 and Figure 16
//     (eXist, Galax, X-Hive, BerkeleyDB XML), which evaluate joins by
//     nested loops and path steps by per-iteration tree walks.
package naive

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mxq/internal/store"
	"mxq/internal/xqt"
)

// Node is a DOM node.
type Node struct {
	Kind     store.NodeKind
	Name     string // element name / PI target
	Text     string // text, comment, PI content
	Attrs    []Attr
	Children []*Node
	Parent   *Node
	Ord      int64 // global document order
}

// Attr is one attribute of an element.
type Attr struct {
	Name, Val string
}

// Doc wraps a document root node.
type Doc struct {
	Root *Node // KindDoc node
	Name string
}

// Builder assembles DOM trees; it implements the same event interface as
// the store shredder so generators can target both.
type Builder struct {
	root  *Node
	stack []*Node
	ord   *int64
}

// NewBuilder returns a DOM builder. ord is the document-order counter to
// draw from (shared across documents and constructed nodes of one
// interpreter).
func NewBuilder(ord *int64) *Builder {
	return &Builder{ord: ord}
}

func (b *Builder) add(n *Node) *Node {
	*b.ord++
	n.Ord = *b.ord
	if len(b.stack) > 0 {
		parent := b.stack[len(b.stack)-1]
		n.Parent = parent
		parent.Children = append(parent.Children, n)
	} else if b.root == nil {
		b.root = n
	}
	return n
}

// StartDoc opens a document node.
func (b *Builder) StartDoc() {
	n := b.add(&Node{Kind: store.KindDoc})
	b.stack = append(b.stack, n)
}

// StartElem opens an element.
func (b *Builder) StartElem(name string) {
	n := b.add(&Node{Kind: store.KindElem, Name: name})
	b.stack = append(b.stack, n)
}

// Attr adds an attribute to the innermost open element.
func (b *Builder) Attr(name, val string) {
	top := b.stack[len(b.stack)-1]
	top.Attrs = append(top.Attrs, Attr{Name: name, Val: val})
}

// Text appends a text node.
func (b *Builder) Text(s string) {
	if s == "" {
		return
	}
	b.add(&Node{Kind: store.KindText, Text: s})
}

// Comment appends a comment node.
func (b *Builder) Comment(s string) { b.add(&Node{Kind: store.KindComment, Text: s}) }

// PI appends a processing instruction.
func (b *Builder) PI(target, data string) {
	b.add(&Node{Kind: store.KindPI, Name: target, Text: data})
}

// End closes the innermost element or document node.
func (b *Builder) End() { b.stack = b.stack[:len(b.stack)-1] }

// Root returns the built root node.
func (b *Builder) Root() *Node { return b.root }

// FromContainer converts a shredded container into a DOM tree.
func FromContainer(c *store.Container, ord *int64) *Node {
	b := NewBuilder(ord)
	var build func(pre int32)
	build = func(pre int32) {
		switch c.Kind[pre] {
		case store.KindDoc:
			b.StartDoc()
		case store.KindElem:
			b.StartElem(c.NameOf(pre))
			ac, lo, hi := c.Attrs(pre)
			for i := lo; i < hi; i++ {
				b.Attr(ac.Names.Name(ac.AttrName[i]), ac.AttrVal[i])
			}
		case store.KindText:
			b.Text(c.TextOf(pre))
			return
		case store.KindComment:
			b.Comment(c.TextOf(pre))
			return
		case store.KindPI:
			b.PI(c.NameOf(pre), c.TextOf(pre))
			return
		case store.KindUnused:
			return
		}
		end := pre + c.Size[pre]
		for p := pre + 1; p <= end; p += c.Size[p] + 1 {
			build(p)
		}
		b.End()
	}
	build(0)
	return b.Root()
}

// StringValue is the XPath string value of n.
func (n *Node) StringValue() string {
	switch n.Kind {
	case store.KindText, store.KindComment, store.KindPI:
		return n.Text
	}
	var sb strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == store.KindText {
			sb.WriteString(m.Text)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return sb.String()
}

// Serialize writes n as XML text in the same format as store.Serialize.
func Serialize(w io.Writer, n *Node) error {
	s := &domSerializer{w: w}
	s.node(n)
	return s.err
}

type domSerializer struct {
	w   io.Writer
	err error
}

func (s *domSerializer) write(str string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, str)
	}
}

var textEsc = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
var attrEsc = strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")

func (s *domSerializer) node(n *Node) {
	switch n.Kind {
	case store.KindDoc:
		for _, c := range n.Children {
			s.node(c)
		}
	case store.KindElem:
		s.write("<")
		s.write(n.Name)
		for _, a := range n.Attrs {
			s.write(" ")
			s.write(a.Name)
			s.write(`="`)
			s.write(attrEsc.Replace(a.Val))
			s.write(`"`)
		}
		if len(n.Children) == 0 {
			s.write("/>")
			return
		}
		s.write(">")
		for _, c := range n.Children {
			s.node(c)
		}
		s.write("</")
		s.write(n.Name)
		s.write(">")
	case store.KindText:
		s.write(textEsc.Replace(n.Text))
	case store.KindComment:
		s.write("<!--")
		s.write(n.Text)
		s.write("-->")
	case store.KindPI:
		s.write("<?")
		s.write(n.Name)
		s.write(" ")
		s.write(n.Text)
		s.write("?>")
	}
}

// Val is one item of a naive-interpreter sequence: an atom (delegated to
// xqt.Item), a node, or an attribute node.
type Val struct {
	Atom  xqt.Item // valid when Node == nil
	Node  *Node    // element/text/comment/PI/document node
	Owner *Node    // attribute owner (attribute nodes)
	AIdx  int      // attribute index within Owner
}

// IsNode reports whether the value is a node or attribute node.
func (v Val) IsNode() bool { return v.Node != nil || v.Owner != nil }

// Atomize returns the typed value of v (untypedAtomic for nodes).
func (v Val) Atomize() xqt.Item {
	switch {
	case v.Node != nil:
		return xqt.Untyped(v.Node.StringValue())
	case v.Owner != nil:
		return xqt.Untyped(v.Owner.Attrs[v.AIdx].Val)
	}
	return v.Atom
}

// orderKey gives the document-order sort key of a node value.
func (v Val) orderKey() (int64, int64) {
	if v.Owner != nil {
		return v.Owner.Ord, int64(v.AIdx) + 1
	}
	return v.Node.Ord, 0
}

// docOrderLess orders node values by document order.
func docOrderLess(a, b Val) bool {
	a1, a2 := a.orderKey()
	b1, b2 := b.orderKey()
	if a1 != b1 {
		return a1 < b1
	}
	return a2 < b2
}

// sortAndDedup sorts node values in document order and removes duplicate
// node identities.
func sortAndDedup(vals []Val) []Val {
	sort.SliceStable(vals, func(i, j int) bool { return docOrderLess(vals[i], vals[j]) })
	out := vals[:0]
	for i, v := range vals {
		if i > 0 {
			p := vals[i-1]
			if p.Node == v.Node && p.Owner == v.Owner && p.AIdx == v.AIdx {
				continue
			}
		}
		out = append(out, v)
	}
	return out
}

// SerializeSeq renders a sequence the way the engine serializes results:
// adjacent atoms separated by a single space, nodes as XML.
func SerializeSeq(w io.Writer, seq []Val) error {
	prevAtom := false
	for _, v := range seq {
		switch {
		case v.Node != nil:
			if err := Serialize(w, v.Node); err != nil {
				return err
			}
			prevAtom = false
		case v.Owner != nil:
			a := v.Owner.Attrs[v.AIdx]
			if _, err := fmt.Fprintf(w, `%s="%s"`, a.Name, attrEsc.Replace(a.Val)); err != nil {
				return err
			}
			prevAtom = false
		default:
			s := v.Atom.AsString()
			if prevAtom {
				s = " " + s
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
			prevAtom = true
		}
	}
	return nil
}
