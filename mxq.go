// Package mxq is a from-scratch Go reproduction of MonetDB/XQuery
// (Boncz et al., SIGMOD 2006): a purely relational XQuery processor.
//
// XML documents are shredded into pre|size|level tables, XQuery is
// compiled by loop-lifting into relational algebra over iter|pos|item
// tables, a property-driven peephole optimizer rewrites the plans, and a
// columnar relational engine executes them. XPath location steps run as
// loop-lifted staircase joins; structural XML updates use the paged,
// append-only rid|size|level scheme.
//
// The serving API is statement-centric: Prepare compiles a query once
// into an immutable plan, and the resulting Stmt is executed any number
// of times — concurrently, from any number of goroutines — with
// per-execution values for the external variables declared in the
// query prolog. Query/QueryString are thin wrappers over the same
// compile path for one-shot use.
//
// Quick start:
//
//	db := mxq.Open()
//	if err := db.LoadDocument("auction.xml", file); err != nil { ... }
//
//	// compile once …
//	stmt, err := db.Prepare(`
//	    declare variable $minprice external;
//	    for $a in /site/closed_auctions/closed_auction
//	    where number($a/price) >= $minprice
//	    return $a/price/text()`)
//
//	// … execute many times, with different bindings, from any goroutine
//	res, err := stmt.Bind("minprice", mxq.Int(40)).Exec()
//	fmt.Println(res)
//
//	// one-shot queries share the compile path (and the plan cache)
//	res, err = db.Query(`count(//item)`)
package mxq

import (
	"context"
	"io"
	"strings"

	"mxq/internal/core"
	"mxq/internal/optcheck"
	"mxq/internal/pages"
	"mxq/internal/sched"
	"mxq/internal/scj"
	"mxq/internal/store"
	"mxq/internal/xmark"
	"mxq/internal/xqt"
)

// DB is an XQuery engine instance holding its loaded documents. It is
// safe for concurrent use: any number of goroutines may call Query (and
// load further documents) on one DB; each query runs against a snapshot
// of the loaded documents with its own transient state. WithParallel
// additionally parallelizes the execution of each single query.
type DB struct {
	eng *core.Engine
	cfg core.Config
}

// Option configures a DB at Open time.
type Option func(*core.Config)

// WithJoinRecognition toggles the rewriting of loop-lifted Cartesian
// products into theta-joins (paper §4.1–4.2; on by default). Disabling it
// reproduces the quadratic plans of Figure 13.
func WithJoinRecognition(on bool) Option {
	return func(c *core.Config) { c.Compiler.JoinRecognition = on }
}

// WithOrderOptimizer toggles the property-driven peephole optimizer
// (sort elimination, refine sorts, streaming rank, positional joins;
// paper §4.1; on by default). Disabling it reproduces Figure 14's
// non-order-preserving baseline.
func WithOrderOptimizer(on bool) Option {
	return func(c *core.Config) { c.OrderAware = on }
}

// WithLoopLiftedSteps selects loop-lifted (true) or per-iteration
// staircase joins (false) for child and descendant steps (Figure 12).
func WithLoopLiftedSteps(on bool) Option {
	return func(c *core.Config) {
		v := scj.LoopLifted
		if !on {
			v = scj.Iterative
		}
		c.Compiler.ChildVariant = v
		c.Compiler.DescVariant = v
	}
}

// WithNametestPushdown toggles pushing element name tests below location
// steps via the element-name index (paper §3.2; on by default).
func WithNametestPushdown(on bool) Option {
	return func(c *core.Config) { c.Compiler.NametestPushdown = on }
}

// WithParallel toggles intra-query parallel execution (off by default):
// staircase-join steps, row numbering, aggregation, selection, row-wise
// functions and hash joins partition their inputs across a goroutine
// pool sized by GOMAXPROCS. Results are byte-identical to serial
// execution.
func WithParallel(on bool) Option {
	return func(c *core.Config) { c.Parallel = on }
}

// WithWorkers bounds the parallel worker pool (implies WithParallel when
// n > 1); 0 restores the GOMAXPROCS default.
func WithWorkers(n int) Option {
	return func(c *core.Config) {
		c.Workers = n
		if n > 1 {
			c.Parallel = true
		}
	}
}

// WithParallelThreshold sets the minimum operator input size at which
// parallel execution kicks in (0 keeps the default; 1 forces every
// operator onto the chunked code paths — useful for testing).
func WithParallelThreshold(n int) Option {
	return func(c *core.Config) { c.ParallelThreshold = n }
}

// WithPlanCacheSize bounds the LRU cache of compiled plans (0 keeps the
// default size).
func WithPlanCacheSize(n int) Option {
	return func(c *core.Config) { c.PlanCacheSize = n }
}

// Scheduler is the global query scheduler: admission control over
// concurrent executions plus one bounded worker-slot pool they all
// share, so N in-flight queries never claim N×cores goroutines. Build
// one with NewScheduler and install it with WithScheduler; one
// scheduler may serve several DBs.
type Scheduler = sched.Scheduler

// SchedulerConfig sizes a Scheduler; zero fields pick the documented
// defaults (pool = GOMAXPROCS workers, 2×pool concurrent executions,
// 2×that queued admissions).
type SchedulerConfig = sched.Config

// SchedulerStats is a point-in-time snapshot of a scheduler's
// admission and pool counters.
type SchedulerStats = sched.Stats

// ErrQueueFull is returned by a scheduled execution when the
// scheduler's admission queue is full — the overload signal the
// serving layer maps to 503.
var ErrQueueFull = sched.ErrQueueFull

// ErrMemExhausted is returned by a scheduled execution when the
// scheduler's global memory pool (SchedulerConfig.MemTotal) cannot
// cover another per-query reservation — like ErrQueueFull, an overload
// signal, not a defect of the query.
var ErrMemExhausted = sched.ErrMemExhausted

// NewScheduler builds a global query scheduler.
func NewScheduler(cfg SchedulerConfig) *Scheduler { return sched.New(cfg) }

// WithScheduler runs the DB's executions under a global query
// scheduler: every execution admits itself (bounded concurrency with
// deadline-aware queueing) and draws its parallel workers from the
// scheduler's shared slot pool under a budget derived from the plan's
// cost hints. Combine with WithParallel; serial execution under a
// scheduler still gets admission control, just with budget 1.
func WithScheduler(s *Scheduler) Option {
	return func(c *core.Config) { c.Scheduler = s }
}

// WithMemLimit sets the per-query memory budget in bytes (0, the
// default, means unlimited): operators charge estimated bytes as they
// materialize rows — at the same amortized checkpoints as cancellation
// polls — and an over-budget query aborts promptly with a typed
// resource-exhausted QueryError (code XPDY0130, see IsResourceLimit),
// never a partial result. Under a scheduler whose grants carry their
// own memory limits, the smaller nonzero limit governs each execution.
func WithMemLimit(bytes int64) Option {
	return func(c *core.Config) { c.MemLimit = bytes }
}

// WithVerifyPlans runs the static plan verifier over every compiled
// plan (before and after optimization): a plan violating the operator
// schema/property invariants fails compilation with a structured
// *planck.PlanInvariantError instead of reaching the executor. Tests
// and the fuzzer keep it on; production use is opt-in (compilation
// cost, not execution cost). The MXQ_VERIFY_PLANS environment variable
// force-enables it regardless of this option.
func WithVerifyPlans(on bool) Option {
	return func(c *core.Config) { c.VerifyPlans = on }
}

// WithCheckRewrites translation-validates the optimizer during
// compilation: every fired rewrite rule emits a before/after witness
// that is replayed over synthesized micro-inputs (internal/optcheck),
// and a disagreement fails compilation naming the guilty rule. Far
// more expensive than WithVerifyPlans — meant for tests, CI and bug
// hunts. The MXQ_CHECK_REWRITES environment variable force-enables it
// regardless of this option.
func WithCheckRewrites(on bool) Option {
	return func(c *core.Config) { c.TraceRewrites = on }
}

// Open returns a new engine instance with all paper optimizations
// enabled, modified by the given options.
func Open(opts ...Option) *DB {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &DB{eng: core.New(cfg), cfg: cfg}
}

// LoadDocument shreds and registers an XML document under the given name.
// The first document loaded becomes the context document for absolute
// paths; other documents are reachable via doc("name").
func (db *DB) LoadDocument(name string, r io.Reader) error {
	return db.eng.LoadXML(name, r)
}

// LoadDocumentString shreds a document given as a string.
func (db *DB) LoadDocumentString(name, xml string) error {
	return db.eng.LoadXML(name, strings.NewReader(xml))
}

// LoadXMark generates and registers a synthetic XMark auction document at
// the given scale factor (1.0 ≈ the benchmark's 110 MB document) without
// going through XML text.
func (db *DB) LoadXMark(name string, factor float64, seed int64) {
	db.eng.LoadContainer(name, xmark.NewStoreContainer(name, factor, seed))
}

// Doc names one document of a collection corpus.
type Doc struct {
	Name string
	R    io.Reader
}

// DocString builds a Doc from XML text.
func DocString(name, xml string) Doc { return Doc{Name: name, R: strings.NewReader(xml)} }

// LoadCollection shreds the given documents into a sharded collection:
// the corpus is partitioned across `shards` containers by a hash of each
// document name, and shard containers load concurrently. The collection
// is queried with collection(name); each shard's documents are evaluated
// in parallel under WithParallel. Collection documents are not
// individually addressable via doc().
func (db *DB) LoadCollection(name string, shards int, docs ...Doc) error {
	cds := make([]core.CollectionDoc, len(docs))
	for i, d := range docs {
		cds[i] = core.CollectionDoc{Name: d.Name, R: d.R}
	}
	return db.eng.LoadCollection(name, shards, cds)
}

// AddToCollection shreds one more document into an existing collection.
// The affected shard is updated copy-on-write, so in-flight queries keep
// seeing the collection state their snapshot captured; the updated
// shard's documents move to the end of the collection's document order.
// Shredding happens outside the engine lock (queries are never stalled
// behind the parse); if another goroutine updates the same collection
// concurrently, the add fails with a "changed concurrently" error and
// should be retried with a fresh Doc reader. Each add costs O(shard)
// time and unreclaimed O(shard) pool memory (superseded shard versions
// stay pinned for snapshot validity) — bulk-load large corpora with
// LoadCollection.
func (db *DB) AddToCollection(coll string, doc Doc) error {
	return db.eng.AddToCollection(coll, doc.Name, doc.R)
}

// CollectionDocs returns the document names of a loaded collection in
// collection document order — the order collection(name) enumerates the
// documents.
func (db *DB) CollectionDocs(name string) ([]string, bool) {
	return db.eng.CollectionDocs(name)
}

// LoadXMarkCollection generates ndocs distinct XMark documents (seeds
// seed..seed+ndocs-1) into a sharded collection without going through XML
// text, and returns the per-document generator seeds keyed by document
// name (for mirroring oracles).
func (db *DB) LoadXMarkCollection(name string, ndocs, shards int, factor float64, seed int64) map[string]int64 {
	sp, seeds := xmark.BuildShardedCollection(name, ndocs, shards, factor, seed)
	db.eng.RegisterCollection(sp)
	return seeds
}

// Result is a query result sequence.
type Result struct{ r *core.Result }

// Query evaluates an XQuery expression: it prepares the query (one
// compile per distinct query text, via the plan cache) and executes it
// without bindings, so a query whose prolog declares a required
// external variable fails with XPDY0002 — use Prepare and Bind for
// parameterized queries. Node items in the result stay valid for the
// lifetime of the Result: each execution pins its own snapshot of the
// loaded documents.
func (db *DB) Query(q string) (*Result, error) {
	r, err := db.eng.Query(q)
	if err != nil {
		return nil, err
	}
	return &Result{r: r}, nil
}

// QueryContext is Query under a context: a deadline or cancellation
// that fires mid-execution aborts the query at the executor's next
// checkpoint and returns ctx.Err(), never a partial result.
func (db *DB) QueryContext(ctx context.Context, q string) (*Result, error) {
	r, err := db.eng.QueryContext(ctx, q)
	if err != nil {
		return nil, err
	}
	return &Result{r: r}, nil
}

// QueryString evaluates q and returns the serialized result.
func (db *DB) QueryString(q string) (string, error) {
	return db.eng.QueryString(q)
}

// Len returns the number of items in the result sequence.
func (r *Result) Len() int { return len(r.r.Items) }

// SerializeXML writes the result as XML text.
func (r *Result) SerializeXML(w io.Writer) error { return r.r.SerializeXML(w) }

// String renders the result as XML text.
func (r *Result) String() string { return r.r.String() }

// Items exposes the raw item sequence (nodes as (container, pre) refs).
func (r *Result) Items() []xqt.Item { return r.r.Items }

// PlanStats returns the number of relational algebra operators and joins
// in the compiled plan of q (the paper's §4.1 plan statistics).
func (db *DB) PlanStats(q string) (ops, joins int, err error) {
	return db.eng.PlanStats(q)
}

// ExplainPlan compiles q and renders the optimized plan tree, each
// operator annotated with its statically inferred output schema and
// column properties (the planck analysis `xq -explain` prints).
func (db *DB) ExplainPlan(q string) (string, error) {
	return db.eng.ExplainPlan(q)
}

// RewriteCoverage compiles q afresh and reports which registered
// optimizer rules fired on it, in registry order (the report `xq
// -rewrite-coverage` prints). Rules that never fired are marked "!".
func (db *DB) RewriteCoverage(q string) (string, error) {
	steps, err := db.eng.RewriteSteps(q)
	if err != nil {
		return "", err
	}
	cov := optcheck.NewCoverage()
	cov.Add(steps)
	return cov.Report(), nil
}

// Engine exposes the underlying engine for benchmarks and tools.
func (db *DB) Engine() *core.Engine { return db.eng }

// UpdatableDoc is a document stored in the paged rid|size|level layout of
// §5.2, supporting structural and value updates without global
// renumbering. Obtain a queryable snapshot with Snapshot.
type UpdatableDoc struct {
	name string
	doc  *pages.Doc
}

// LoadUpdatable shreds a document into the paged update layout. fill is
// the used fraction of each logical page (0 picks the default 0.75);
// pageBits selects the page size in tuples (0 picks the default 128).
func LoadUpdatable(name string, r io.Reader, pageBits uint, fill float64) (*UpdatableDoc, error) {
	c, err := store.Shred(name, r, false)
	if err != nil {
		return nil, err
	}
	return &UpdatableDoc{name: name, doc: pages.FromContainer(c, pageBits, fill)}, nil
}

// Doc exposes the underlying paged document.
func (u *UpdatableDoc) Doc() *pages.Doc { return u.doc }

// InsertFirst inserts a new element (optionally with text content) as the
// first child of the node at pre, returning the new node's pre.
func (u *UpdatableDoc) InsertFirst(pre int32, elem, text string) (int32, error) {
	return u.doc.InsertFirst(pre, elem, text)
}

// InsertAfter inserts a new element as the following sibling of pre.
func (u *UpdatableDoc) InsertAfter(pre int32, elem, text string) (int32, error) {
	return u.doc.InsertAfter(pre, elem, text)
}

// Delete removes the subtree at pre (tuples become unused in place).
func (u *UpdatableDoc) Delete(pre int32) error { return u.doc.Delete(pre) }

// ReplaceText replaces a text node's content (a value update).
func (u *UpdatableDoc) ReplaceText(pre int32, s string) error { return u.doc.ReplaceText(pre, s) }

// SetAttr sets or adds an attribute on an element.
func (u *UpdatableDoc) SetAttr(pre int32, name, val string) error {
	return u.doc.SetAttr(pre, name, val)
}

// Snapshot materializes the current pre|size|level view into a fresh DB
// for querying.
func (u *UpdatableDoc) Snapshot() *DB {
	db := Open()
	db.eng.LoadContainer(u.name, u.doc.View(u.name))
	return db
}
