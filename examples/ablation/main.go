// Ablation: run the same join query with and without the paper's two
// headline optimizations — join recognition (§4) and the loop-lifted
// staircase join (§3) — and print the timing gap on a generated XMark
// document.
package main

import (
	"fmt"
	"log"
	"time"

	"mxq"
)

const joinQuery = `
	for $p in /site/people/person
	let $a := for $t in /site/closed_auctions/closed_auction
	          where $t/buyer/@person = $p/@id
	          return $t
	return <item person="{$p/name/text()}">{count($a)}</item>`

const pathQuery = `for $p in /site/people/person return count($p//emailaddress)`

func timeIt(db *mxq.DB, q string) time.Duration {
	start := time.Now()
	if _, err := db.Query(q); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}

func main() {
	const factor, seed = 0.01, 42

	fmt.Println("== join recognition (paper Fig. 13) ==")
	withJoin := mxq.Open(mxq.WithJoinRecognition(true))
	withJoin.LoadXMark("auction.xml", factor, seed)
	withoutJoin := mxq.Open(mxq.WithJoinRecognition(false))
	withoutJoin.LoadXMark("auction.xml", factor, seed)
	a := timeIt(withJoin, joinQuery)
	b := timeIt(withoutJoin, joinQuery)
	fmt.Printf("join recognition on:  %v\n", a)
	fmt.Printf("join recognition off: %v  (%.1fx slower)\n\n", b, float64(b)/float64(a))

	fmt.Println("== loop-lifted staircase join (paper Fig. 12) ==")
	lifted := mxq.Open(mxq.WithLoopLiftedSteps(true))
	lifted.LoadXMark("auction.xml", factor, seed)
	iterative := mxq.Open(mxq.WithLoopLiftedSteps(false), mxq.WithNametestPushdown(false))
	iterative.LoadXMark("auction.xml", factor, seed)
	a = timeIt(lifted, pathQuery)
	b = timeIt(iterative, pathQuery)
	fmt.Printf("loop-lifted: %v\n", a)
	fmt.Printf("iterative:   %v  (%.1fx slower)\n", b, float64(b)/float64(a))
}
