// Auction analytics: run XMark-style analytical queries — including the
// value joins the paper's join recognition accelerates — over a generated
// auction document.
package main

import (
	"fmt"
	"log"

	"mxq"
)

func main() {
	db := mxq.Open()
	db.LoadXMark("auction.xml", 0.005, 42) // ~0.5 MB auction site

	fmt.Println("== top-level site statistics ==")
	stats := []struct{ label, q string }{
		{"persons", `count(/site/people/person)`},
		{"items", `count(/site/regions//item)`},
		{"open auctions", `count(/site/open_auctions/open_auction)`},
		{"closed auctions", `count(/site/closed_auctions/closed_auction)`},
		{"avg closing price", `avg(for $a in /site/closed_auctions/closed_auction return number($a/price/text()))`},
	}
	for _, s := range stats {
		out, err := db.QueryString(s.q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %s\n", s.label, out)
	}

	fmt.Println("\n== buyers with three or more purchases (value join, Q8 style) ==")
	out, err := db.QueryString(`
		for $p in /site/people/person
		let $a := for $t in /site/closed_auctions/closed_auction
		          where $t/buyer/@person = $p/@id
		          return $t
		where count($a) >= 3
		return <buyer name="{$p/name/text()}" purchases="{count($a)}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	fmt.Println("\n== auctions whose first bid at least doubled (Q3 style) ==")
	out, err = db.QueryString(`
		for $b in /site/open_auctions/open_auction
		where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text()
		return <auction id="{$b/@id}" first="{$b/bidder[1]/increase/text()}" last="{$b/bidder[last()]/increase/text()}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	fmt.Println("\n== items mentioning gold, by region ==")
	out, err = db.QueryString(`
		for $r in /site/regions/*
		let $g := for $i in $r/item
		          where contains(string(exactly-one($i/description)), "gold")
		          return $i
		return <region name="{name($r)}" gold="{count($g)}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	ops, joins, err := db.PlanStats(`
		for $p in /site/people/person
		let $a := for $t in /site/closed_auctions/closed_auction
		          where $t/buyer/@person = $p/@id
		          return $t
		return <item person="{$p/name/text()}">{count($a)}</item>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled Q8 plan: %d relational operators, %d joins\n", ops, joins)
}
