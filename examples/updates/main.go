// Updates: exercise the paged rid|size|level update scheme of §5.2 —
// structural inserts and deletes without global pre renumbering, followed
// by queries over the updated view.
package main

import (
	"fmt"
	"log"
	"strings"

	"mxq"
)

const doc = `<inventory><warehouse id="w1"><crate><widget/><widget/></crate></warehouse><warehouse id="w2"><crate><widget/></crate></warehouse></inventory>`

func main() {
	u, err := mxq.LoadUpdatable("inv.xml", strings.NewReader(doc), 4, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	count := func(label string) {
		db := u.Snapshot()
		n, err := db.QueryString(`count(//widget)`)
		if err != nil {
			log.Fatal(err)
		}
		pages := u.Doc().Pages()
		fmt.Printf("%-28s widgets=%s logical-pages=%d appended=%d moved=%d\n",
			label, n, pages, u.Doc().PagesAppended, u.Doc().TuplesMoved)
	}
	count("initial")

	// locate the first crate in the current view and grow it: inserts
	// first use page-local slack, then splice overflow pages
	db := u.Snapshot()
	res, err := db.Query(`(//crate)[1]`)
	if err != nil || res.Len() == 0 {
		log.Fatalf("crate lookup: %v", err)
	}
	cratePre := int32(res.Items()[0].I)
	for i := 0; i < 12; i++ {
		if _, err := u.InsertFirst(cratePre, "widget", ""); err != nil {
			log.Fatal(err)
		}
		// the crate's position may shift when an overflow page splices in
		db = u.Snapshot()
		res, err = db.Query(`(//crate)[1]`)
		if err != nil {
			log.Fatal(err)
		}
		cratePre = int32(res.Items()[0].I)
	}
	count("after 12 inserts")

	// delete the second warehouse's crate: tuples blank in place
	res, err = u.Snapshot().Query(`/inventory/warehouse[@id = "w2"]/crate`)
	if err != nil || res.Len() == 0 {
		log.Fatal("crate w2 lookup failed")
	}
	if err := u.Delete(int32(res.Items()[0].I)); err != nil {
		log.Fatal(err)
	}
	count("after delete of w2 crate")

	// a value update: tag the first warehouse
	res, err = u.Snapshot().Query(`/inventory/warehouse[1]`)
	if err != nil {
		log.Fatal(err)
	}
	if err := u.SetAttr(int32(res.Items()[0].I), "audited", "yes"); err != nil {
		log.Fatal(err)
	}
	out, err := u.Snapshot().QueryString(`/inventory/warehouse[1]/@audited`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %s\n", "after SetAttr", out)

	final, err := u.Snapshot().QueryString(`/inventory`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal document:")
	fmt.Println(final)
}
