// Prepared statements: compile an XQuery with external variables ONCE,
// then execute the same immutable plan from many goroutines, each with
// its own bindings — the serving-path pattern of the statement-centric
// API (compile cost amortized across executions, per-execution
// document snapshots, race-free by construction).
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"mxq"
)

func main() {
	db := mxq.Open(mxq.WithParallel(true))
	// a synthetic XMark auction document (~1.1 MB worth of data)
	db.LoadXMark("auction.xml", 0.01, 42)

	// one statement, compiled once: which closed auctions sold above a
	// client-supplied price threshold, tagged with the client's name?
	stmt, err := db.Prepare(`
		declare variable $client external;
		declare variable $minprice external := 0;
		<report client="{$client}">{
			count(/site/closed_auctions/closed_auction[number(price) >= $minprice])
		}</report>`)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range stmt.Vars() {
		fmt.Printf("parameter $%-9s required=%-5v singleton-default=%v\n", v.Name, v.Required, v.Singleton)
	}

	// N concurrent clients share the handle; Bind derives a private
	// statement per client, so no synchronization is needed
	const clients = 8
	results := make([]string, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out, err := stmt.
				Bind("client", mxq.String(fmt.Sprintf("client-%d", c))).
				Bind("minprice", mxq.Int(int64(c*25))).
				ExecString()
			if err != nil {
				results[c] = "error: " + err.Error()
				return
			}
			results[c] = out
		}(c)
	}
	wg.Wait()
	sort.Strings(results)
	for _, r := range results {
		fmt.Println(r)
	}
}
