// Example collection demonstrates sharded multi-document collections:
// LoadCollection partitions a corpus across shard containers (hashed by
// document name, loaded in parallel), collection("name") enumerates the
// corpus in collection document order, and AddToCollection extends it
// copy-on-write while queries keep running.
package main

import (
	"fmt"
	"log"

	"mxq"
)

func main() {
	db := mxq.Open(mxq.WithParallel(true))

	// A small library corpus, sharded across 3 containers.
	err := db.LoadCollection("library", 3,
		mxq.DocString("moby.xml", `<book year="1851"><title>Moby-Dick</title></book>`),
		mxq.DocString("ulysses.xml", `<book year="1922"><title>Ulysses</title></book>`),
		mxq.DocString("dune.xml", `<book year="1965"><title>Dune</title></book>`),
	)
	if err != nil {
		log.Fatal(err)
	}

	if names, ok := db.CollectionDocs("library"); ok {
		fmt.Println("documents:", names)
	}

	n, err := db.QueryString(`count(collection("library"))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count:", n)

	titles, err := db.QueryString(
		`for $b in collection("library")/book order by $b/title/text() return $b/title/text()`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("titles:", titles)

	// Extend the corpus; the affected shard is copied, so snapshots taken
	// by in-flight queries are unaffected.
	if err := db.AddToCollection("library",
		mxq.DocString("neuromancer.xml", `<book year="1984"><title>Neuromancer</title></book>`)); err != nil {
		log.Fatal(err)
	}
	recent, err := db.QueryString(
		`count(collection("library")/book[@year > 1900])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books after 1900:", recent)
}
