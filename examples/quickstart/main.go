// Quickstart: load a document, run queries, print results.
package main

import (
	"fmt"
	"log"

	"mxq"
)

const doc = `<library>
<book year="1994"><title>TCP/IP Illustrated</title><author>Stevens</author><price>65.95</price></book>
<book year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><price>39.95</price></book>
<book year="1999"><title>Economics of Technology</title><author>Gerbarg</author><price>129.95</price></book>
</library>`

func main() {
	db := mxq.Open()
	if err := db.LoadDocumentString("books.xml", doc); err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// all titles
		`/library/book/title/text()`,
		// books under 100 with their year
		`for $b in /library/book
		 where $b/price/text() < 100
		 return <cheap year="{$b/@year}">{$b/title/text()}</cheap>`,
		// count of authors per book, sorted by price
		`for $b in /library/book
		 order by number($b/price/text()) descending
		 return <b title="{$b/title/text()}" authors="{count($b/author)}"/>`,
		// aggregate
		`avg(for $p in /library/book/price return number($p/text()))`,
	}
	for _, q := range queries {
		out, err := db.QueryString(q)
		if err != nil {
			log.Fatalf("query failed: %v", err)
		}
		fmt.Printf("Q: %s\n=> %s\n\n", q, out)
	}
}
