// Wire client for the mxqd server: the prepared-statement session over
// HTTP. It waits for the server's health probe, prepares a
// parameterized query, introspects its external variables, executes it
// with typed JSON binds, and releases the statement — the round trip
// docs/serving.md documents, and the probe `make serve-smoke` drives.
//
// Start a server first, then point the client at it:
//
//	mxqd -addr 127.0.0.1:8080 -xmark 0.01
//	go run ./examples/server -addr 127.0.0.1:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "mxqd address")
	flag.Parse()
	base := "http://" + *addr

	// wait for liveness (lets this client double as a startup probe)
	if err := waitHealthy(base, 10*time.Second); err != nil {
		log.Fatalf("server not healthy: %v", err)
	}
	fmt.Println("healthz: ok")

	// prepare once; the response lists the plan's external variables
	var prep struct {
		ID   string `json:"id"`
		Vars []struct {
			Name     string `json:"name"`
			Required bool   `json:"required"`
		} `json:"vars"`
	}
	if err := call("POST", base+"/prepare", map[string]any{
		"query": `declare variable $min external;
			for $a in /site/open_auctions/open_auction
			where number($a/initial) >= $min
			return $a/initial/text()`,
	}, &prep); err != nil {
		log.Fatalf("prepare: %v", err)
	}
	fmt.Printf("prepared %s, vars:", prep.ID)
	for _, v := range prep.Vars {
		fmt.Printf(" $%s(required=%v)", v.Name, v.Required)
	}
	fmt.Println()

	// execute the same plan with two different typed binds
	for _, min := range []float64{1, 100} {
		body, err := rawCall("POST", base+"/stmt/"+prep.ID+"/exec", map[string]any{
			"binds":      map[string]any{"min": min},
			"timeout_ms": 5000,
		})
		if err != nil {
			log.Fatalf("exec min=%g: %v", min, err)
		}
		fmt.Printf("min=%-3g -> %d bytes of XML\n", min, len(body))
	}

	// release the statement
	req, _ := http.NewRequest("DELETE", base+"/stmt/"+prep.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		log.Fatalf("close: %v (status %v)", err, resp.Status)
	}
	resp.Body.Close()
	fmt.Printf("closed %s\n", prep.ID)
}

func waitHealthy(base string, within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("status %s", resp.Status)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// rawCall POSTs a JSON body and returns the raw response body,
// converting non-2xx statuses (the server's JSON error envelope) into
// errors.
func rawCall(method, url string, in any) ([]byte, error) {
	payload, _ := json.Marshal(in)
	req, _ := http.NewRequest(method, url, bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

func call(method, url string, in, out any) error {
	body, err := rawCall(method, url, in)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}
